"""The imperative GUI action space (the baseline's vocabulary).

These are the fine-grained primitives a GUI-only agent emits — the analogue
of UFO-2's ``click``, ``set_edit_text``, ``keyboard_input``,
``drag_on_coordinates`` and ``wheel_mouse_input``.  The DMI-augmented agent
uses the same primitives only on its slow-path fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import Application
from repro.gui.widgets import ScrollBarControl
from repro.uia.element import UIElement


@dataclass
class GuiAction:
    """One imperative GUI action referencing a labelled on-screen control."""

    kind: str                     # click | type | shortcut | drag_scroll | select_text | wheel
    target_label: str = ""
    target_name: str = ""
    text: str = ""
    value: float = 0.0
    wheel_dist: int = 0


@dataclass
class ActionOutcome:
    """What happened when an action was delivered."""

    delivered: bool
    target: Optional[UIElement] = None
    error: str = ""
    detail: dict = field(default_factory=dict)


def deliver_click(app: Application, element: UIElement) -> ActionOutcome:
    try:
        app.input.click(element)
    except Exception as exc:
        return ActionOutcome(delivered=False, target=element, error=str(exc))
    return ActionOutcome(delivered=True, target=element)


def deliver_text(app: Application, element: UIElement, text: str) -> ActionOutcome:
    try:
        app.input.type_text(element, text)
    except Exception as exc:
        return ActionOutcome(delivered=False, target=element, error=str(exc))
    return ActionOutcome(delivered=True, target=element)


def deliver_shortcut(app: Application, combination: str) -> ActionOutcome:
    try:
        app.input.keyboard_input(combination)
    except Exception as exc:
        return ActionOutcome(delivered=False, error=str(exc))
    return ActionOutcome(delivered=True)


def deliver_scrollbar_drag(app: Application, scrollbar: UIElement,
                           target_percent: float, achieved_percent: float) -> ActionOutcome:
    """Drag a scrollbar thumb toward ``target_percent``.

    The caller decides (via its composite-interaction error model) how close
    the drag lands; this helper converts the achieved percentage into the
    coordinate drag the input layer expects and returns the realised
    position.
    """
    if not isinstance(scrollbar, ScrollBarControl):
        return ActionOutcome(delivered=False, target=scrollbar,
                             error=f"{scrollbar.name!r} is not a scrollbar")
    rect = scrollbar.rect
    current = scrollbar.position
    if scrollbar.orientation == "vertical":
        span = max(rect.height, 1.0)
        x = rect.left + rect.width / 2.0
        y1 = rect.top + span * (current / 100.0)
        y2 = rect.top + span * (achieved_percent / 100.0)
        app.input.drag_on_coordinates(x, y1, x, y2)
    else:
        span = max(rect.width, 1.0)
        y = rect.top + rect.height / 2.0
        x1 = rect.left + span * (current / 100.0)
        x2 = rect.left + span * (achieved_percent / 100.0)
        app.input.drag_on_coordinates(x1, y, x2, y)
    return ActionOutcome(delivered=True, target=scrollbar,
                         detail={"target_percent": target_percent,
                                 "achieved_percent": scrollbar.position})
