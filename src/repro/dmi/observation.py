"""Observation declaration: ``get_texts`` (paper §3.5).

``get_texts`` retrieves structured text/values from controls, replacing
pixel-level perception and the compound interactions otherwise needed to
reveal hidden content (e.g. expanding a truncated Excel cell).

Two modes, mirroring the paper's "passive + active" design:

* **passive** — before each LLM call, ``get_texts`` runs over all DataItem
  controls on screen and a truncated, structured digest is injected into the
  prompt; empty values are coalesced for brevity;
* **active** — the LLM explicitly requests the full content of a named
  control when the truncated digest is not enough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.base import Application
from repro.dmi.errors import ExecutionStatus, PatternUnsupportedFeedback, StructuredFeedback, ok_feedback
from repro.dmi.matching import FuzzyControlMatcher
from repro.llm.tokens import estimate_tokens
from repro.uia.control_types import ControlType
from repro.uia.element import UIElement
from repro.uia.patterns import PatternId


@dataclass
class PassiveDigest:
    """The truncated structured payload injected into every prompt."""

    entries: Dict[str, str] = field(default_factory=dict)
    coalesced_empty: int = 0
    truncated: bool = False

    def to_prompt_text(self) -> str:
        lines = ["## On-screen data items (passive get_texts)"]
        for name, value in self.entries.items():
            lines.append(f"{name}: {value}")
        if self.coalesced_empty:
            lines.append(f"({self.coalesced_empty} empty cells omitted)")
        if self.truncated:
            lines.append("(values truncated; call get_texts in active mode for full content)")
        return "\n".join(lines)

    def token_estimate(self) -> int:
        return estimate_tokens(self.to_prompt_text())


@dataclass
class ObservationConfig:
    """Truncation limits for the passive digest."""

    max_items: int = 60
    max_value_chars: int = 24


class ObservationInterface:
    """Implements passive and active ``get_texts``."""

    def __init__(self, app: Application, matcher: Optional[FuzzyControlMatcher] = None,
                 config: Optional[ObservationConfig] = None) -> None:
        self.app = app
        self.matcher = matcher or FuzzyControlMatcher()
        self.config = config or ObservationConfig()

    # ------------------------------------------------------------------
    def _roots(self) -> List[UIElement]:
        return list(reversed(self.app.desktop.open_windows(self.app.process_id)))

    def _visible_data_items(self) -> List[UIElement]:
        items: List[UIElement] = []
        for root in self._roots():
            for element in root.iter_subtree():
                if element.control_type == ControlType.DATA_ITEM and element.is_on_screen():
                    items.append(element)
        return items

    @staticmethod
    def _text_of(element: UIElement, max_chars: Optional[int] = None) -> str:
        value = element.get_pattern(PatternId.VALUE)
        text_pattern = element.get_pattern(PatternId.TEXT)
        if value is not None and value.value:
            text = str(value.value)
        elif text_pattern is not None:
            text = text_pattern.get_text()
        else:
            text = element.text or ""
        if max_chars is not None and len(text) > max_chars:
            return text[:max_chars] + "…"
        return text

    # ------------------------------------------------------------------
    # passive mode
    # ------------------------------------------------------------------
    def passive_digest(self) -> PassiveDigest:
        """The truncated DataItem digest injected before each LLM call."""
        digest = PassiveDigest()
        items = self._visible_data_items()
        kept = 0
        for element in items:
            text = self._text_of(element, self.config.max_value_chars)
            if not text:
                digest.coalesced_empty += 1
                continue
            if kept >= self.config.max_items:
                digest.truncated = True
                break
            digest.entries[element.name] = text
            kept += 1
        full_lengths = any(len(self._text_of(e)) > self.config.max_value_chars for e in items)
        digest.truncated = digest.truncated or full_lengths
        return digest

    # ------------------------------------------------------------------
    # active mode
    # ------------------------------------------------------------------
    def get_texts(self, control_label: Optional[str] = None) -> StructuredFeedback:
        """Active retrieval of a control's full text/value.

        Without a label, returns the full (untruncated) DataItem table —
        the "retrieve the complete content" escape hatch.
        """
        if control_label is None:
            table = {e.name: self._text_of(e) for e in self._visible_data_items()
                     if self._text_of(e)}
            return ok_feedback("get_texts", target="<all data items>", values=table)
        match = self.matcher.find_by_label(self._roots(), control_label)
        if match.element is None:
            return StructuredFeedback(
                status=ExecutionStatus.ERROR, command_kind="get_texts", target=control_label,
                message=f"no on-screen control labelled {control_label!r}")
        element = match.element
        if (element.get_pattern(PatternId.TEXT) is None
                and element.get_pattern(PatternId.VALUE) is None
                and not element.text):
            return PatternUnsupportedFeedback("get_texts", control_label, "Text/Value")
        return ok_feedback("get_texts", target=element.name, text=self._text_of(element))
