"""Structured error feedback (paper §3.4, "Handling unstable UI interaction").

When a declarative command cannot be completed, DMI does not just fail — it
returns a structured description of what was found (or not found), the
control's state and suggestions, so the calling LLM can re-plan from facts
rather than from a stack trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class DMIError(RuntimeError):
    """Base class for DMI-level errors."""


class CommandFiltered(DMIError):
    """A visit command was filtered out (navigation-node target)."""


class ExecutionStatus(str, enum.Enum):
    OK = "ok"
    ERROR = "error"
    FILTERED = "filtered"
    SKIPPED = "skipped"


@dataclass
class StructuredFeedback:
    """A structured result for one declarative command."""

    status: ExecutionStatus
    command_kind: str = ""
    target: str = ""
    message: str = ""
    #: Machine-readable detail: control state, scroll positions, candidates...
    detail: Dict[str, object] = field(default_factory=dict)
    suggestions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == ExecutionStatus.OK

    def to_prompt_text(self) -> str:
        """Render the feedback the way it would be inserted into the prompt."""
        lines = [f"[{self.status.value}] {self.command_kind} {self.target}".rstrip()]
        if self.message:
            lines.append(f"  message: {self.message}")
        for key, value in self.detail.items():
            lines.append(f"  {key}: {value}")
        for suggestion in self.suggestions:
            lines.append(f"  suggestion: {suggestion}")
        return "\n".join(lines)


def ok_feedback(command_kind: str, target: str = "", **detail) -> StructuredFeedback:
    return StructuredFeedback(status=ExecutionStatus.OK, command_kind=command_kind,
                              target=target, detail=dict(detail))


def ControlNotFoundFeedback(command_kind: str, target: str, window: str,
                            candidates: Optional[List[str]] = None) -> StructuredFeedback:
    """Feedback for a control that could not be located on any path."""
    return StructuredFeedback(
        status=ExecutionStatus.ERROR,
        command_kind=command_kind,
        target=target,
        message=f"control {target!r} could not be located in window {window!r}",
        detail={"window": window, "nearest_matches": candidates or []},
        suggestions=["verify the control id against the navigation topology",
                     "use further_query to refresh the relevant branch",
                     "fall back to GUI primitives if the control is outside the topology"],
    )


def ControlDisabledFeedback(command_kind: str, target: str,
                            state: Optional[Dict[str, object]] = None) -> StructuredFeedback:
    """Feedback for a control that was found but cannot be interacted with."""
    return StructuredFeedback(
        status=ExecutionStatus.ERROR,
        command_kind=command_kind,
        target=target,
        message=f"control {target!r} was located but is disabled in the current state",
        detail=dict(state or {}),
        suggestions=["satisfy the control's precondition first (e.g. select an object)",
                     "re-plan using the structured state above"],
    )


def PatternUnsupportedFeedback(command_kind: str, target: str,
                               pattern: str) -> StructuredFeedback:
    """Feedback for a state/observation declaration on an unsupporting control."""
    return StructuredFeedback(
        status=ExecutionStatus.ERROR,
        command_kind=command_kind,
        target=target,
        message=f"control {target!r} does not support the {pattern} pattern; "
                f"nothing was executed",
        detail={"required_pattern": pattern},
        suggestions=["choose a control that exposes the required pattern",
                     "fall back to GUI primitives"],
    )


def FilteredFeedback(command_kind: str, target: str) -> StructuredFeedback:
    """Feedback for a command dropped by non-leaf filtering."""
    return StructuredFeedback(
        status=ExecutionStatus.FILTERED,
        command_kind=command_kind,
        target=target,
        message=f"{target!r} is a navigation node; DMI handles navigation itself",
    )
