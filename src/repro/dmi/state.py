"""State declarations: interaction-related interfaces (paper §3.5, Table 2).

These interfaces let the caller declare a control's desired end state instead
of emitting the compound interaction that would realise it (drag sequences,
keyboard-mouse coordination, repeated clicking).  They are built directly on
UIA control patterns:

===================  =====================  =========================================
Interface            Control pattern        Description
===================  =====================  =========================================
set_scrollbar_pos    Scroll                 Set scrollbar position to x%
select_lines         Text                   Select one (or contiguous) line(s)
select_paragraphs    Text                   Select one paragraph or a range
select_controls      Selection              Single or multi-select controls
set_toggle_state     Toggle                 Set a checkbox-like control's state
set_expanded         ExpandCollapse         Expand a collapsible control
set_collapsed        ExpandCollapse         Collapse a collapsible control
set_value            Value / RangeValue     Set an edit/spinner value directly
===================  =====================  =========================================

Two design rules from the paper are enforced here:

* **separation from control access** — these interfaces refuse static
  topology ids; controls are addressed by their *label on the current
  screen* (the accessibility tree the caller can see right now);
* **conservative execution** — if any addressed control does not support the
  required pattern the call returns an error and nothing is partially
  executed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.base import Application
from repro.dmi.errors import (
    ExecutionStatus,
    PatternUnsupportedFeedback,
    StructuredFeedback,
    ok_feedback,
)
from repro.dmi.matching import FuzzyControlMatcher
from repro.uia.element import UIElement
from repro.uia.patterns import (
    ExpandCollapsePattern,
    PatternId,
    ScrollPattern,
    SelectionItemPattern,
    TextPattern,
    TogglePattern,
    ToggleState,
)

#: Interface name -> UIA control pattern it builds on (paper Table 2).  Used
#: by the Table 2 bench and by documentation tests.
INTERFACE_PATTERN_TABLE: Dict[str, str] = {
    "set_scrollbar_pos": "ScrollPattern",
    "select_lines": "TextPattern",
    "select_paragraphs": "TextPattern",
    "select_controls": "SelectionPattern",
    "get_texts": "TextPattern & ValuePattern",
    "set_toggle_state": "TogglePattern",
    "set_expanded": "ExpandCollapsePattern",
    "set_collapsed": "ExpandCollapsePattern",
    "set_value": "ValuePattern",
}


class StateInterfaces:
    """Executes state declarations against the live accessibility tree."""

    def __init__(self, app: Application, matcher: Optional[FuzzyControlMatcher] = None) -> None:
        self.app = app
        self.matcher = matcher or FuzzyControlMatcher()

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def _roots(self) -> List[UIElement]:
        return list(reversed(self.app.desktop.open_windows(self.app.process_id)))

    def _find_by_label(self, label: str) -> Optional[UIElement]:
        match = self.matcher.find_by_label(self._roots(), label)
        return match.element

    @staticmethod
    def _reject_static_id(label: object) -> Optional[StructuredFeedback]:
        """Static topology ids are prohibited here (paper §3.5)."""
        if isinstance(label, int) or (isinstance(label, str) and label.isdigit()):
            return StructuredFeedback(
                status=ExecutionStatus.ERROR,
                command_kind="state",
                target=str(label),
                message="interaction-related interfaces take on-screen control labels, "
                        "not navigation-topology ids",
                suggestions=["pass the control's label from the current accessibility tree"],
            )
        return None

    # ------------------------------------------------------------------
    # scroll
    # ------------------------------------------------------------------
    def set_scrollbar_pos(self, control_label: str, x_percent: Optional[float] = None,
                          y_percent: Optional[float] = None) -> StructuredFeedback:
        """Set a scrollbar / scrollable container to an absolute position."""
        rejected = self._reject_static_id(control_label)
        if rejected is not None:
            return rejected
        element = self._find_by_label(control_label)
        if element is None:
            return StructuredFeedback(status=ExecutionStatus.ERROR,
                                      command_kind="set_scrollbar_pos",
                                      target=control_label,
                                      message=f"no on-screen control labelled {control_label!r}")
        scroll: Optional[ScrollPattern] = element.get_pattern(PatternId.SCROLL)
        if scroll is None:
            return PatternUnsupportedFeedback("set_scrollbar_pos", control_label, "Scroll")
        try:
            scroll.set_scroll_percent(x_percent, y_percent)
        except Exception as exc:
            return StructuredFeedback(status=ExecutionStatus.ERROR,
                                      command_kind="set_scrollbar_pos",
                                      target=control_label, message=str(exc))
        return ok_feedback("set_scrollbar_pos", target=control_label,
                           horizontal=scroll.horizontal_percent,
                           vertical=scroll.vertical_percent)

    # ------------------------------------------------------------------
    # text selection
    # ------------------------------------------------------------------
    def select_lines(self, control_label: str, start_index: int,
                     end_index: Optional[int] = None) -> StructuredFeedback:
        return self._select_text(control_label, start_index, end_index, unit="line")

    def select_paragraphs(self, control_label: str, start_index: int,
                          end_index: Optional[int] = None) -> StructuredFeedback:
        return self._select_text(control_label, start_index, end_index, unit="paragraph")

    def _select_text(self, control_label: str, start: int, end: Optional[int],
                     unit: str) -> StructuredFeedback:
        command = f"select_{unit}s"
        rejected = self._reject_static_id(control_label)
        if rejected is not None:
            return rejected
        element = self._find_by_label(control_label)
        if element is None:
            return StructuredFeedback(status=ExecutionStatus.ERROR, command_kind=command,
                                      target=control_label,
                                      message=f"no on-screen control labelled {control_label!r}")
        text: Optional[TextPattern] = element.get_pattern(PatternId.TEXT)
        if text is None:
            return PatternUnsupportedFeedback(command, control_label, "Text")
        try:
            if unit == "line":
                selection = text.select_lines(start, end)
            else:
                selection = text.select_paragraphs(start, end)
        except IndexError as exc:
            return StructuredFeedback(status=ExecutionStatus.ERROR, command_kind=command,
                                      target=control_label, message=str(exc),
                                      detail={"available": len(text.get_lines())
                                              if unit == "line" else len(text.get_paragraphs())})
        return ok_feedback(command, target=control_label, selection=selection)

    # ------------------------------------------------------------------
    # control selection
    # ------------------------------------------------------------------
    def select_controls(self, control_labels: Sequence[str],
                        mode: str = "replace") -> StructuredFeedback:
        """Select one or several controls (cells, list items, thumbnails).

        ``mode`` is "replace" (single/contiguous selection semantics) or
        "add" (multi-select).  Execution is conservative: if any label cannot
        be resolved or lacks SelectionItem support, nothing is selected.
        """
        if isinstance(control_labels, str):
            control_labels = [control_labels]
        resolved: List[UIElement] = []
        for label in control_labels:
            rejected = self._reject_static_id(label)
            if rejected is not None:
                return rejected
            element = self._find_by_label(label)
            if element is None:
                return StructuredFeedback(
                    status=ExecutionStatus.ERROR, command_kind="select_controls",
                    target=label,
                    message=f"no on-screen control labelled {label!r}; nothing was selected")
            if element.get_pattern(PatternId.SELECTION_ITEM) is None:
                return PatternUnsupportedFeedback("select_controls", label, "SelectionItem")
            resolved.append(element)
        for index, element in enumerate(resolved):
            item: SelectionItemPattern = element.get_pattern(PatternId.SELECTION_ITEM)
            if mode == "add" or index > 0:
                try:
                    item.add_to_selection()
                except Exception:
                    item.select()
            else:
                item.select()
        return ok_feedback("select_controls",
                           target=", ".join(control_labels),
                           selected=[e.name for e in resolved])

    # ------------------------------------------------------------------
    # toggle / expand
    # ------------------------------------------------------------------
    def set_toggle_state(self, control_label: str, on: bool) -> StructuredFeedback:
        element = self._find_by_label(control_label)
        if element is None:
            return StructuredFeedback(status=ExecutionStatus.ERROR,
                                      command_kind="set_toggle_state", target=control_label,
                                      message=f"no on-screen control labelled {control_label!r}")
        toggle: Optional[TogglePattern] = element.get_pattern(PatternId.TOGGLE)
        if toggle is None:
            return PatternUnsupportedFeedback("set_toggle_state", control_label, "Toggle")
        toggle.set_state(ToggleState.ON if on else ToggleState.OFF)
        return ok_feedback("set_toggle_state", target=control_label, state=int(toggle.state))

    def set_expanded(self, control_label: str) -> StructuredFeedback:
        return self._set_expansion(control_label, expanded=True)

    def set_collapsed(self, control_label: str) -> StructuredFeedback:
        return self._set_expansion(control_label, expanded=False)

    def _set_expansion(self, control_label: str, expanded: bool) -> StructuredFeedback:
        command = "set_expanded" if expanded else "set_collapsed"
        element = self._find_by_label(control_label)
        if element is None:
            return StructuredFeedback(status=ExecutionStatus.ERROR, command_kind=command,
                                      target=control_label,
                                      message=f"no on-screen control labelled {control_label!r}")
        pattern: Optional[ExpandCollapsePattern] = element.get_pattern(PatternId.EXPAND_COLLAPSE)
        if pattern is None:
            return PatternUnsupportedFeedback(command, control_label, "ExpandCollapse")
        if expanded:
            pattern.expand()
        else:
            pattern.collapse()
        self.app.desktop.relayout()
        return ok_feedback(command, target=control_label, state=int(pattern.state))

    # ------------------------------------------------------------------
    # value
    # ------------------------------------------------------------------
    def set_value(self, control_label: str, value: object) -> StructuredFeedback:
        """Set an Edit/Spinner/ComboBox value directly (ValuePattern)."""
        element = self._find_by_label(control_label)
        if element is None:
            return StructuredFeedback(status=ExecutionStatus.ERROR, command_kind="set_value",
                                      target=control_label,
                                      message=f"no on-screen control labelled {control_label!r}")
        value_pattern = element.get_pattern(PatternId.VALUE)
        range_pattern = element.get_pattern(PatternId.RANGE_VALUE)
        if value_pattern is None and range_pattern is None:
            return PatternUnsupportedFeedback("set_value", control_label, "Value")
        try:
            if isinstance(value, (int, float)) and range_pattern is not None:
                range_pattern.set_value(float(value))
            else:
                self.app.input.type_text(element, str(value))
        except Exception as exc:
            return StructuredFeedback(status=ExecutionStatus.ERROR, command_kind="set_value",
                                      target=control_label, message=str(exc))
        return ok_feedback("set_value", target=control_label, value=value)
