"""The ``visit`` interface: access declaration (paper §3.4, §4.3).

``visit`` receives a JSON-like array of commands and translates each into
concrete GUI actions:

* ``{"id": <target_id>}`` — control access: navigate to the functional
  control and perform the primitive interaction (a click);
* ``{"id": <target_id>, "entry_ref_id": [...]}`` — control access inside a
  shared subtree;
* ``{"id": <target_id>, "text": "..."}`` — access-and-input-text;
* ``{"shortcut_key": "..."}`` — auxiliary keyboard shortcut;
* ``{"further_query": [...]}`` — topology retrieval (exclusive; answered by
  the query engine, not executed here).

Pipeline per call: **filter** commands targeting navigation (non-leaf) nodes
and any shortcut commands that follow them; **resolve** each retained command
to the unique root-to-target path; **navigate** the path from the current UI
state (matching the path backward against the visible hierarchy, closing
stray windows, fuzzy-matching and retrying); **interact** (click / click +
text input).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.base import Application
from repro.dmi.errors import (
    ControlDisabledFeedback,
    ControlNotFoundFeedback,
    ExecutionStatus,
    FilteredFeedback,
    StructuredFeedback,
    ok_feedback,
)
from repro.dmi.matching import FuzzyControlMatcher
from repro.gui.widgets import Dialog, Edit, Window
from repro.topology.forest import NavigationForest
from repro.uia.element import UIElement
from repro.uia.identifiers import ControlIdentifier, parse_identifier


@dataclass
class VisitCommand:
    """One parsed visit command."""

    kind: str                                  # access | access_input | shortcut | further_query
    node_id: Optional[int] = None
    entry_ref_ids: List[int] = field(default_factory=list)
    text: Optional[str] = None
    shortcut: Optional[str] = None
    query_ids: List[int] = field(default_factory=list)
    raw: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def parse(cls, raw: Dict[str, object]) -> "VisitCommand":
        if "further_query" in raw:
            ids = raw["further_query"]
            if isinstance(ids, (int, str)):
                ids = [ids]
            return cls(kind="further_query", query_ids=[int(i) for i in ids], raw=dict(raw))
        if "shortcut_key" in raw:
            return cls(kind="shortcut", shortcut=str(raw["shortcut_key"]), raw=dict(raw))
        if "id" in raw:
            entry = raw.get("entry_ref_id", [])
            if isinstance(entry, (int, str)):
                entry = [entry]
            kind = "access_input" if "text" in raw else "access"
            return cls(kind=kind, node_id=int(raw["id"]),
                       entry_ref_ids=[int(e) for e in entry],
                       text=str(raw["text"]) if "text" in raw else None,
                       raw=dict(raw))
        raise ValueError(f"unrecognised visit command: {raw!r}")


@dataclass
class VisitResult:
    """The outcome of one visit call."""

    feedback: List[StructuredFeedback] = field(default_factory=list)
    filtered: List[VisitCommand] = field(default_factory=list)
    executed: int = 0
    further_query_ids: List[int] = field(default_factory=list)
    #: Low-level input actions delivered while navigating (for step/action
    #: accounting in the benchmark).
    actions_delivered: int = 0

    @property
    def ok(self) -> bool:
        return all(f.status != ExecutionStatus.ERROR for f in self.feedback)

    def errors(self) -> List[StructuredFeedback]:
        return [f for f in self.feedback if f.status == ExecutionStatus.ERROR]


@dataclass
class VisitConfig:
    """Executor robustness knobs."""

    #: How many times to re-scan for a deterministically expected control
    #: before giving up (slow-loading controls).
    max_retries: int = 2
    #: Maximum windows the navigator will close while searching for a path.
    max_window_closes: int = 4


class VisitExecutor:
    """Executes visit commands against a live application."""

    def __init__(self, app: Application, forest: NavigationForest,
                 matcher: Optional[FuzzyControlMatcher] = None,
                 config: Optional[VisitConfig] = None) -> None:
        self.app = app
        self.forest = forest
        self.matcher = matcher or FuzzyControlMatcher()
        self.config = config or VisitConfig()

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def execute(self, commands: Sequence[Dict[str, object]]) -> VisitResult:
        """Execute a visit call (an array of raw command dicts)."""
        result = VisitResult()
        parsed = [VisitCommand.parse(raw) for raw in commands]

        queries = [c for c in parsed if c.kind == "further_query"]
        if queries:
            # FurtherQuery is exclusive: it cannot be mixed with other
            # commands in the same call (paper §3.4).
            if len(parsed) > len(queries):
                result.feedback.append(StructuredFeedback(
                    status=ExecutionStatus.ERROR,
                    command_kind="further_query",
                    message="further_query cannot be mixed with other commands in one call",
                ))
                return result
            for query in queries:
                result.further_query_ids.extend(query.query_ids)
                result.feedback.append(ok_feedback("further_query",
                                                   target=str(query.query_ids)))
            return result

        retained = self._filter_navigation_targets(parsed, result)
        for command in retained:
            if command.kind == "shortcut":
                feedback = self._execute_shortcut(command)
            else:
                feedback = self._execute_access(command, result)
            result.feedback.append(feedback)
            if feedback.ok:
                result.executed += 1
        return result

    # ------------------------------------------------------------------
    # filtering (handling improper LLM instruction following)
    # ------------------------------------------------------------------
    def _filter_navigation_targets(self, commands: List[VisitCommand],
                                   result: VisitResult) -> List[VisitCommand]:
        """Drop commands that target non-leaf (navigation) nodes, plus any
        shortcut commands that immediately follow a dropped command."""
        retained: List[VisitCommand] = []
        previous_filtered = False
        for command in commands:
            if command.kind in ("access", "access_input"):
                node = self.forest.node(command.node_id) if \
                    self.forest.has_node(command.node_id) else None
                if node is not None and not node.is_leaf:
                    result.filtered.append(command)
                    result.feedback.append(FilteredFeedback(command.kind, node.name))
                    previous_filtered = True
                    continue
                retained.append(command)
                previous_filtered = False
            elif command.kind == "shortcut":
                if previous_filtered:
                    result.filtered.append(command)
                    result.feedback.append(FilteredFeedback("shortcut", command.shortcut or ""))
                    continue
                retained.append(command)
            else:  # pragma: no cover - further_query handled earlier
                retained.append(command)
        return retained

    # ------------------------------------------------------------------
    # command execution
    # ------------------------------------------------------------------
    def _execute_shortcut(self, command: VisitCommand) -> StructuredFeedback:
        try:
            self.app.input.keyboard_input(command.shortcut or "")
        except Exception as exc:
            return StructuredFeedback(status=ExecutionStatus.ERROR, command_kind="shortcut",
                                      target=command.shortcut or "", message=str(exc))
        return ok_feedback("shortcut", target=command.shortcut or "")

    def _execute_access(self, command: VisitCommand, result: VisitResult) -> StructuredFeedback:
        if command.node_id is None or not self.forest.has_node(command.node_id):
            return StructuredFeedback(
                status=ExecutionStatus.ERROR, command_kind=command.kind,
                target=str(command.node_id),
                message=f"unknown topology node id {command.node_id}",
                suggestions=["use ids from the provided navigation topology",
                             "request the relevant branch with further_query"],
            )
        node = self.forest.node(command.node_id)
        try:
            path = [parse_identifier(cid)
                    for cid in self.forest.control_path(command.node_id,
                                                        list(command.entry_ref_ids))]
        except Exception as exc:
            return StructuredFeedback(status=ExecutionStatus.ERROR, command_kind=command.kind,
                                      target=node.name, message=f"path resolution failed: {exc}")

        element, feedback = self._navigate_path(path, command, result)
        if element is None:
            return feedback
        if command.kind == "access_input":
            try:
                self.app.input.type_text(element, command.text or "")
                result.actions_delivered += 1
            except Exception as exc:
                return StructuredFeedback(status=ExecutionStatus.ERROR,
                                          command_kind=command.kind, target=node.name,
                                          message=f"text input failed: {exc}")
            return ok_feedback(command.kind, target=node.name, text=command.text)
        return ok_feedback(command.kind, target=node.name)

    # ------------------------------------------------------------------
    # path navigation
    # ------------------------------------------------------------------
    def _navigate_path(self, path: List[ControlIdentifier], command: VisitCommand,
                       result: VisitResult):
        """Navigate along ``path`` and click each remaining step.

        Returns (target_element, feedback); the element is None on failure.
        """
        if not path:
            return None, StructuredFeedback(status=ExecutionStatus.ERROR,
                                            command_kind=command.kind,
                                            message="empty navigation path")
        closes = 0
        while True:
            windows = self._open_windows_topmost_first()
            if not windows:
                return None, ControlNotFoundFeedback(command.kind, path[-1].primary_id,
                                                     window="<none>")
            start_index = self._deepest_visible_index(path, windows)
            if start_index is None:
                # No element of the path exists in the topmost window; close
                # it (OK > Close > Cancel, preferring to save modifications)
                # and retry against the window below (paper §4.3).
                top = windows[0]
                if isinstance(top, Dialog) and closes < self.config.max_window_closes:
                    self._close_window_politely(top)
                    closes += 1
                    result.actions_delivered += 1
                    continue
                start_index = 0
            break

        element: Optional[UIElement] = None
        for index in range(start_index, len(path)):
            identifier = path[index]
            element = self._locate_with_retry(identifier)
            if element is None:
                windows = self._open_windows_topmost_first()
                candidates = self.matcher.nearest_names(windows, identifier)
                return None, ControlNotFoundFeedback(
                    command.kind, identifier.primary_id,
                    window=windows[0].name if windows else "<none>",
                    candidates=candidates)
            if not element.is_enabled:
                return None, ControlDisabledFeedback(
                    command.kind, identifier.primary_id,
                    state={"control_type": element.control_type.value,
                           "window": element.root().name})
            try:
                self.app.input.click(element)
                result.actions_delivered += 1
            except Exception as exc:
                return None, StructuredFeedback(
                    status=ExecutionStatus.ERROR, command_kind=command.kind,
                    target=identifier.primary_id,
                    message=f"primitive interaction failed: {exc}")
        return element, ok_feedback(command.kind, target=path[-1].primary_id)

    def _deepest_visible_index(self, path: List[ControlIdentifier],
                               windows: Sequence[Window]) -> Optional[int]:
        """Match the path from the end backward against the visible hierarchy.

        Only exact matches count here: this step decides where navigation
        starts, and a fuzzy false-positive would skip required clicks.  Fuzzy
        matching still applies during the forward pass.
        """
        top = windows[0]
        for index in range(len(path) - 1, -1, -1):
            match = self.matcher.find([top], path[index], require_on_screen=True,
                                      allow_fuzzy=False)
            if match.found:
                return index
        # Nothing from the path exists in the topmost window.  The main
        # window always restarts navigation from the top of the path; a
        # dialog signals the caller to close it and try the window below.
        if len(windows) == 1:
            return 0
        return None

    def _locate_with_retry(self, identifier: ControlIdentifier) -> Optional[UIElement]:
        """Find a control, retrying to absorb slow-loading UI (paper §3.4)."""
        for attempt in range(self.config.max_retries + 1):
            windows = self._open_windows_topmost_first()
            match = self.matcher.find(windows, identifier, require_on_screen=True)
            if match.found:
                return match.element
            # A retry re-lays-out the desktop, emulating "wait and re-scan".
            self.app.desktop.relayout()
        return None

    def _close_window_politely(self, window: Window) -> None:
        """Close a window following the OK > Close > Cancel priority."""
        for name in ("OK", "Close", "Cancel"):
            button = window.find(name=name)
            if button is not None and button.is_enabled:
                try:
                    self.app.input.click(button)
                    return
                except Exception:
                    continue
        window.close()

    def _open_windows_topmost_first(self) -> List[Window]:
        return list(reversed(self.app.desktop.open_windows(self.app.process_id)))
