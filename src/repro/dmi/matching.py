"""Fuzzy control matching (paper §3.4).

Exact control identifiers can stop matching at runtime: UIA gives no
uniqueness guarantee, applications rename controls ("Next" becomes "Go To"),
and ancestor chains shift when panes are rebuilt.  The fuzzy matcher combines
control type, ancestor hierarchy and name similarity so the executor can
still locate the intended control when exact matching fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher
from typing import List, Optional, Sequence

from repro.uia.element import UIElement
from repro.uia.identifiers import ControlIdentifier


@dataclass
class MatchResult:
    """Outcome of a control lookup."""

    element: Optional[UIElement]
    score: float = 0.0
    exact: bool = False

    @property
    def found(self) -> bool:
        return self.element is not None


def _name_similarity(a: str, b: str) -> float:
    if not a or not b:
        return 0.0
    a, b = a.lower(), b.lower()
    if a == b:
        return 1.0
    if a in b or b in a:
        return 0.85
    return SequenceMatcher(None, a, b).ratio()


def _id_tail(identifier: str) -> str:
    """The last dot-separated segment of an automation id ("Word.Home.Bold" -> "Bold")."""
    return identifier.rsplit(".", 1)[-1] if "." in identifier else identifier


def _primary_similarity(wanted: str, element: UIElement) -> float:
    """Similarity between an identifier's primary id and an element.

    Dotted automation ids share long app/tab prefixes ("PowerPoint.Design.X"
    vs "PowerPoint.Home.Y"), which would inflate plain string similarity, so
    dotted ids are compared on their final segment; the element's
    human-readable name is also considered.
    """
    candidate_id = element.primary_id
    if "." in wanted and "." in candidate_id:
        id_score = _name_similarity(_id_tail(wanted), _id_tail(candidate_id))
    else:
        id_score = _name_similarity(wanted, candidate_id)
    name_score = _name_similarity(_id_tail(wanted), element.name)
    return max(id_score, name_score)


def _ancestor_compatible(identifier: ControlIdentifier, element: UIElement) -> bool:
    """True when the element's position is consistent with the stored path.

    The immediate parent must carry the same primary id (or one of the two
    ancestor paths must be empty — e.g. top-level controls); deeper ancestors
    may differ because windows are recreated between modeling and execution.
    """
    if not identifier.ancestor_path:
        return True
    parent = element.parent
    if parent is None:
        return False
    return parent.primary_id == identifier.ancestor_path[-1]


def _ancestor_overlap(identifier: ControlIdentifier, element: UIElement) -> float:
    wanted = [seg.lower() for seg in identifier.ancestor_path]
    actual = [a.primary_id.lower() for a in reversed(element.ancestors())]
    if not wanted or not actual:
        return 0.5  # nothing to compare — neutral
    overlap = len(set(wanted) & set(actual))
    return overlap / max(len(wanted), 1)


class FuzzyControlMatcher:
    """Locates controls in the live accessibility tree, exactly or fuzzily."""

    def __init__(self, minimum_score: float = 0.62) -> None:
        self.minimum_score = minimum_score

    # ------------------------------------------------------------------
    def find(self, roots: Sequence[UIElement], identifier: ControlIdentifier,
             require_on_screen: bool = True, allow_fuzzy: bool = True) -> MatchResult:
        """Find the element best matching ``identifier`` under any of ``roots``.

        Exact matches (primary id + control type, with the stored ancestor
        path as a suffix or superset) win; otherwise the highest-scoring
        fuzzy candidate above the threshold is returned (unless
        ``allow_fuzzy`` is False).
        """
        candidates: List[UIElement] = []
        for root in roots:
            for element in root.iter_subtree():
                if require_on_screen and not element.is_on_screen():
                    continue
                candidates.append(element)

        # Exact matches must also be ancestor-compatible: several controls can
        # share a primary id ("Blue" colour cells under different pickers) and
        # picking the wrong one would silently change semantics — the very
        # path-dependence problem DMI exists to avoid.
        exact = [e for e in candidates
                 if identifier.matches_element(e) and _ancestor_compatible(identifier, e)]
        if exact:
            best = max(exact, key=lambda e: _ancestor_overlap(identifier, e))
            return MatchResult(element=best, score=1.0, exact=True)
        if not allow_fuzzy:
            return MatchResult(element=None, score=0.0, exact=False)

        best_element: Optional[UIElement] = None
        best_score = 0.0
        for element in candidates:
            type_score = 1.0 if element.control_type == identifier.control_type else 0.0
            name_score = _primary_similarity(identifier.primary_id, element)
            ancestor_score = _ancestor_overlap(identifier, element)
            score = 0.25 * type_score + 0.55 * name_score + 0.20 * ancestor_score
            if score > best_score:
                best_score = score
                best_element = element
        if best_element is not None and best_score >= self.minimum_score:
            return MatchResult(element=best_element, score=best_score, exact=False)
        return MatchResult(element=None, score=best_score, exact=False)

    # ------------------------------------------------------------------
    #: Labels are short and easily confusable ("Item A" vs "Item Z"), so the
    #: label lookup demands a noticeably higher similarity than identifier
    #: matching before accepting a non-exact candidate.
    LABEL_MINIMUM_SCORE = 0.85

    def find_by_label(self, roots: Sequence[UIElement], label: str,
                      require_on_screen: bool = True) -> MatchResult:
        """Find a control by its on-screen label (name).

        This is the lookup used by the state/observation interfaces, which
        deliberately operate on the current screen's accessibility tree
        rather than on static topology ids (paper §3.5).
        """
        best_element: Optional[UIElement] = None
        best_key = (-1.0, -1, -1)
        best_score = 0.0
        for root in roots:
            for element in root.iter_subtree():
                if require_on_screen and not element.is_on_screen():
                    continue
                score = _name_similarity(element.name, label)
                # Ties (a ribbon *group* and the control inside it often share
                # a name) are broken in favour of the more interactive, more
                # specific (deeper) element.
                key = (score, len(element.patterns), element.depth())
                if key > best_key:
                    best_key = key
                    best_score = score
                    best_element = element
        threshold = max(self.minimum_score, self.LABEL_MINIMUM_SCORE)
        if best_element is not None and best_score >= threshold:
            return MatchResult(element=best_element, score=best_score,
                               exact=best_score >= 0.999)
        return MatchResult(element=None, score=best_score, exact=False)

    def nearest_names(self, roots: Sequence[UIElement], identifier: ControlIdentifier,
                      limit: int = 3) -> List[str]:
        """Names of the closest candidates (for structured error feedback)."""
        scored = []
        for root in roots:
            for element in root.iter_subtree():
                if not element.name:
                    continue
                scored.append((_name_similarity(element.name, identifier.primary_id),
                               element.name))
        scored.sort(reverse=True)
        seen = []
        for _score, name in scored:
            if name not in seen:
                seen.append(name)
            if len(seen) >= limit:
                break
        return seen
