"""Content-addressed on-disk cache for offline navigation models.

The paper calls the offline navigation model "version-specific but
machine-independent" (§5.2): for a given application build and ripper
configuration the UNG never changes, so re-ripping it for every benchmark
run — or once per worker process in a parallel run — is pure waste.

:class:`ArtifactCache` persists the UNG (plus the original rip report) via
:mod:`repro.topology.persistence` under a key derived from

* the application name,
* a fingerprint of the ripper configuration (the only knobs that change
  what the rip observes), and
* the persistence :data:`~repro.topology.persistence.FORMAT_VERSION`,

so stale entries are never served across config or format changes — a new
key simply misses and rebuilds.  Only the UNG is stored; forest, core view
and query engine are rebuilt deterministically on load
(:func:`repro.dmi.interface.rebuild_offline_artifacts`), which keeps cached
runs byte-identical to cold runs even when the *serialization* knobs differ
from the ones the cache entry was written under.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.apps import APP_FACTORIES
from repro.apps.base import Application
from repro.dmi.interface import (
    DMIConfig,
    OfflineArtifacts,
    build_offline_artifacts,
    rebuild_offline_artifacts,
)
from repro.topology.persistence import FORMAT_VERSION, load_model, save_ung

#: Lazily bound telemetry module.  ``repro.bench.runner`` imports this
#: module, so a top-level ``repro.bench.telemetry`` import here would be a
#: cycle; the first emit resolves it instead (a cached module reference —
#: no per-call import machinery after that).
_telemetry = None


def _events():
    global _telemetry
    if _telemetry is None:
        from repro.bench import telemetry
        _telemetry = telemetry
    return _telemetry


def config_fingerprint(config: DMIConfig) -> str:
    """Hex digest identifying the rip-relevant part of a DMI configuration."""
    payload = {
        "format_version": FORMAT_VERSION,
        "ripper": dataclasses.asdict(config.ripper),
    }
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


class ArtifactCache:
    """Loads offline artefacts from disk, building (and storing) on miss.

    ``max_entries`` bounds the cache directory (LRU by last-*load* time:
    every served hit refreshes its entry's mtime, and after each insert the
    oldest entries beyond the bound are evicted), so long-lived workers
    cycling through many app×config fingerprints don't grow the directory
    without limit.  Hits, misses and evictions are counted on the instance
    and emitted as telemetry events (``sink``; default: the process-wide
    sink from :mod:`repro.bench.telemetry`).
    """

    def __init__(self, cache_dir: Union[str, Path],
                 config: Optional[DMIConfig] = None, *,
                 max_entries: Optional[int] = None,
                 sink=None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.cache_dir = Path(cache_dir)
        self.config = config or DMIConfig()
        self.max_entries = max_entries
        self.sink = sink
        #: Entries served from disk without ripping.
        self.hits = 0
        #: Entries that required a fresh offline build.
        self.misses = 0
        #: Entries removed by the ``max_entries`` LRU bound.
        self.evictions = 0

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def path_for(self, app_name: str) -> Path:
        return self.cache_dir / f"{app_name}-{config_fingerprint(self.config)}.json"

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, app_name: str) -> Optional[OfflineArtifacts]:
        """Return cached artefacts for ``app_name``, or None on miss.

        Unreadable or format-incompatible entries are treated as misses (the
        caller rebuilds and overwrites them) rather than raised, so a cache
        directory can survive format bumps.
        """
        path = self.path_for(app_name)
        if not path.exists():
            return None
        try:
            ung, report = load_model(path)
        except (ValueError, KeyError, json.JSONDecodeError, OSError):
            return None
        return rebuild_offline_artifacts(ung, self.config, rip_report=report)

    def store(self, app_name: str, artifacts: OfflineArtifacts) -> Path:
        """Persist already-built artefacts (only the UNG + rip report).

        Inserting may push the directory over ``max_entries``; the oldest
        entries (by last-load time) are evicted right after the insert, so
        the bound holds between calls.
        """
        path = save_ung(artifacts.ung, self.path_for(app_name),
                        report=artifacts.rip_report)
        self._evict_over_limit(keep=path)
        return path

    # ------------------------------------------------------------------
    # the main entry point
    # ------------------------------------------------------------------
    def load_or_build(self, app_name: str,
                      factory: Optional[Callable[[], Application]] = None
                      ) -> OfflineArtifacts:
        """Return artefacts for ``app_name``, ripping only on a cold cache."""
        cached = self.get(app_name)
        if cached is not None:
            self.hits += 1
            if self.max_entries is not None:
                # LRU recency is last *load*; without a bound there is no
                # LRU, so the unbounded hot path skips the utime syscall.
                self._touch(self.path_for(app_name))
            sink = _events().resolve(self.sink)
            if sink:
                sink.emit(_events().CacheHit(app=app_name))
            return cached
        self.misses += 1
        sink = _events().resolve(self.sink)
        if sink:
            sink.emit(_events().CacheMiss(app=app_name))
        factory = factory or APP_FACTORIES[app_name]
        artifacts = build_offline_artifacts(factory(), self.config)
        self.store(app_name, artifacts)
        return artifacts

    # ------------------------------------------------------------------
    # the max_entries LRU bound
    # ------------------------------------------------------------------
    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's mtime: LRU age is time since last *load*."""
        try:
            os.utime(path)
        except OSError:
            pass  # entry raced away (another process evicted it)

    def _entries_oldest_first(self) -> List[Path]:
        aged = []
        for path in self.cache_dir.glob("*.json"):
            try:
                aged.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue  # deleted under us
        return [path for _, _, path in sorted(aged)]

    def _evict_over_limit(self, keep: Path) -> None:
        if self.max_entries is None:
            return
        entries = self._entries_oldest_first()
        excess = len(entries) - self.max_entries
        for victim in entries:
            if excess <= 0:
                break
            if victim == keep:
                continue  # never evict the entry just inserted/served
            try:
                victim.unlink()
            except FileNotFoundError:
                excess -= 1  # already gone: the directory shrank without us
                continue
            except OSError:
                continue  # unreadable entry; try the next victim
            excess -= 1
            self.evictions += 1
            sink = _events().resolve(self.sink)
            if sink:
                sink.emit(_events().CacheEvicted(entry=victim.name))

    def stats(self) -> Dict[str, object]:
        return {"cache_dir": str(self.cache_dir), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "max_entries": self.max_entries}
