"""Content-addressed on-disk cache for offline navigation models.

The paper calls the offline navigation model "version-specific but
machine-independent" (§5.2): for a given application build and ripper
configuration the UNG never changes, so re-ripping it for every benchmark
run — or once per worker process in a parallel run — is pure waste.

:class:`ArtifactCache` persists the UNG (plus the original rip report) via
:mod:`repro.topology.persistence` under a key derived from

* the application name,
* a fingerprint of the ripper configuration (the only knobs that change
  what the rip observes), and
* the persistence :data:`~repro.topology.persistence.FORMAT_VERSION`,

so stale entries are never served across config or format changes — a new
key simply misses and rebuilds.  Only the UNG is stored; forest, core view
and query engine are rebuilt deterministically on load
(:func:`repro.dmi.interface.rebuild_offline_artifacts`), which keeps cached
runs byte-identical to cold runs even when the *serialization* knobs differ
from the ones the cache entry was written under.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.apps import APP_FACTORIES
from repro.apps.base import Application
from repro.dmi.interface import (
    DMIConfig,
    OfflineArtifacts,
    build_offline_artifacts,
    rebuild_offline_artifacts,
)
from repro.topology.persistence import FORMAT_VERSION, load_model, save_ung


def config_fingerprint(config: DMIConfig) -> str:
    """Hex digest identifying the rip-relevant part of a DMI configuration."""
    payload = {
        "format_version": FORMAT_VERSION,
        "ripper": dataclasses.asdict(config.ripper),
    }
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


class ArtifactCache:
    """Loads offline artefacts from disk, building (and storing) on miss."""

    def __init__(self, cache_dir: Union[str, Path],
                 config: Optional[DMIConfig] = None) -> None:
        self.cache_dir = Path(cache_dir)
        self.config = config or DMIConfig()
        #: Entries served from disk without ripping.
        self.hits = 0
        #: Entries that required a fresh offline build.
        self.misses = 0

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def path_for(self, app_name: str) -> Path:
        return self.cache_dir / f"{app_name}-{config_fingerprint(self.config)}.json"

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, app_name: str) -> Optional[OfflineArtifacts]:
        """Return cached artefacts for ``app_name``, or None on miss.

        Unreadable or format-incompatible entries are treated as misses (the
        caller rebuilds and overwrites them) rather than raised, so a cache
        directory can survive format bumps.
        """
        path = self.path_for(app_name)
        if not path.exists():
            return None
        try:
            ung, report = load_model(path)
        except (ValueError, KeyError, json.JSONDecodeError, OSError):
            return None
        return rebuild_offline_artifacts(ung, self.config, rip_report=report)

    def store(self, app_name: str, artifacts: OfflineArtifacts) -> Path:
        """Persist already-built artefacts (only the UNG + rip report)."""
        return save_ung(artifacts.ung, self.path_for(app_name),
                        report=artifacts.rip_report)

    # ------------------------------------------------------------------
    # the main entry point
    # ------------------------------------------------------------------
    def load_or_build(self, app_name: str,
                      factory: Optional[Callable[[], Application]] = None
                      ) -> OfflineArtifacts:
        """Return artefacts for ``app_name``, ripping only on a cold cache."""
        cached = self.get(app_name)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        factory = factory or APP_FACTORIES[app_name]
        artifacts = build_offline_artifacts(factory(), self.config)
        self.store(app_name, artifacts)
        return artifacts

    def stats(self) -> Dict[str, object]:
        return {"cache_dir": str(self.cache_dir), "hits": self.hits,
                "misses": self.misses}
