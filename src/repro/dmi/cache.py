"""Content-addressed on-disk cache for offline navigation models.

The paper calls the offline navigation model "version-specific but
machine-independent" (§5.2): for a given application build and ripper
configuration the UNG never changes, so re-ripping it for every benchmark
run — or once per worker process in a parallel run — is pure waste.

:class:`ArtifactCache` persists the UNG (plus the original rip report) via
:mod:`repro.topology.persistence` under a key derived from

* the application name,
* the application build version (``Application.APP_VERSION``), so a rebuilt
  app never serves the previous build's model,
* a fingerprint of the ripper configuration (the only knobs that change
  what the rip observes), and
* the persistence :data:`~repro.topology.persistence.FORMAT_VERSION`,

so stale entries are never served across app, config or format changes — a
new key simply misses and rebuilds.  Only the UNG is stored; forest, core
view and query engine are rebuilt deterministically on load
(:func:`repro.dmi.interface.rebuild_offline_artifacts`), which keeps cached
runs byte-identical to cold runs even when the *serialization* knobs differ
from the ones the cache entry was written under.

Recency and garbage collection
------------------------------
Entry recency ("when was this last served?") is recorded explicitly in a
sidecar index (``.recency-index.json``, nanosecond timestamps) rather than
through file mtimes: several mainstream filesystems round mtimes to a
second or worse, which made the PR 5 mtime-LRU eviction order
non-deterministic when entries were touched within the same tick.  The
mtime is still refreshed best-effort as a fallback ordering key for entries
a foreign writer added without updating the index.

Beyond the ``max_entries`` LRU bound, :meth:`ArtifactCache.gc` sweeps the
directory against an age bound and/or a total-byte budget (oldest-first
eviction until the budget holds), emitting a ``cache_gc`` telemetry event
so sweeps are visible in the run registry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.apps import app_factory
from repro.apps.base import Application
from repro.dmi.interface import (
    DMIConfig,
    OfflineArtifacts,
    build_offline_artifacts,
    rebuild_offline_artifacts,
)
from repro.topology.persistence import FORMAT_VERSION, load_model, save_ung

#: Lazily bound telemetry module.  ``repro.bench.runner`` imports this
#: module, so a top-level ``repro.bench.telemetry`` import here would be a
#: cycle; the first emit resolves it instead (a cached module reference —
#: no per-call import machinery after that).
_telemetry = None

#: Sidecar recency index file name.  Dot-prefixed and filtered explicitly so
#: it is never mistaken for a cache entry.
INDEX_NAME = ".recency-index.json"


def _events():
    global _telemetry
    if _telemetry is None:
        from repro.bench import telemetry
        _telemetry = telemetry
    return _telemetry


#: Lazily bound trace-context module, same cycle-avoidance story as
#: :func:`_events` — only ever resolved behind an ``if sink:`` guard, so
#: the NullSink path never imports it.
_tracing = None


def _trace():
    global _tracing
    if _tracing is None:
        from repro.bench.observe import trace
        _tracing = trace
    return _tracing


def config_fingerprint(config: DMIConfig, app_version: str = "") -> str:
    """Hex digest identifying the rip-relevant part of a DMI configuration.

    ``app_version`` (the application build's ``APP_VERSION``) is folded in
    when provided, so a rebuilt application addresses a fresh cache slot.
    It is folded in *only* when non-empty: versionless digests (the PR 5
    scheme) stay stable, which keeps registry config keys comparable across
    the transition.
    """
    payload: Dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "ripper": dataclasses.asdict(config.ripper),
    }
    if app_version:
        payload["app_version"] = app_version
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


def app_version_for(app_name: str,
                    factory: Optional[Callable[[], Application]] = None) -> str:
    """The build version the cache key should carry for ``app_name``.

    Resolved from the factory's (class's) ``APP_VERSION`` without
    instantiating the application.  Unknown app names (ad-hoc factories in
    tests, foreign tools) resolve to "" — a versionless legacy key.
    """
    source = factory
    if source is None:
        try:
            source = app_factory(app_name)
        except KeyError:
            source = None
    return str(getattr(source, "APP_VERSION", "") or "")


class ArtifactCache:
    """Loads offline artefacts from disk, building (and storing) on miss.

    ``max_entries`` bounds the cache directory (LRU by last-*load* time:
    every served hit stamps its entry in the recency index, and after each
    insert the oldest entries beyond the bound are evicted), so long-lived
    workers cycling through many app×config fingerprints don't grow the
    directory without limit.  Hits, misses and evictions are counted on the
    instance and emitted as telemetry events (``sink``; default: the
    process-wide sink from :mod:`repro.bench.telemetry`).
    """

    def __init__(self, cache_dir: Union[str, Path],
                 config: Optional[DMIConfig] = None, *,
                 max_entries: Optional[int] = None,
                 sink=None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.cache_dir = Path(cache_dir)
        self.config = config or DMIConfig()
        self.max_entries = max_entries
        self.sink = sink
        #: Entries served from disk without ripping.
        self.hits = 0
        #: Entries that required a fresh offline build.
        self.misses = 0
        #: Entries removed by the ``max_entries`` LRU bound or by ``gc()``.
        self.evictions = 0

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def path_for(self, app_name: str,
                 app_version: Optional[str] = None) -> Path:
        if app_version is None:
            app_version = app_version_for(app_name)
        fingerprint = config_fingerprint(self.config, app_version=app_version)
        return self.cache_dir / f"{app_name}-{fingerprint}.json"

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, app_name: str,
            app_version: Optional[str] = None) -> Optional[OfflineArtifacts]:
        """Return cached artefacts for ``app_name``, or None on miss.

        Unreadable or format-incompatible entries are treated as misses (the
        caller rebuilds and overwrites them) rather than raised, so a cache
        directory can survive format bumps.
        """
        path = self.path_for(app_name, app_version)
        if not path.exists():
            return None
        try:
            ung, report = load_model(path)
        except (ValueError, KeyError, json.JSONDecodeError, OSError):
            return None
        return rebuild_offline_artifacts(ung, self.config, rip_report=report)

    def store(self, app_name: str, artifacts: OfflineArtifacts,
              app_version: Optional[str] = None) -> Path:
        """Persist already-built artefacts (only the UNG + rip report).

        Inserting may push the directory over ``max_entries``; the oldest
        entries (by last-load time) are evicted right after the insert, so
        the bound holds between calls.
        """
        path = save_ung(artifacts.ung, self.path_for(app_name, app_version),
                        report=artifacts.rip_report)
        self._touch(path)
        self._evict_over_limit(keep=path)
        return path

    # ------------------------------------------------------------------
    # the main entry point
    # ------------------------------------------------------------------
    def load_or_build(self, app_name: str,
                      factory: Optional[Callable[[], Application]] = None
                      ) -> OfflineArtifacts:
        """Return artefacts for ``app_name``, ripping only on a cold cache."""
        sink = _events().resolve(self.sink)
        loading = time.perf_counter() if sink else 0.0
        version = app_version_for(app_name, factory)
        cached = self.get(app_name, app_version=version)
        if cached is not None:
            self.hits += 1
            self._touch(self.path_for(app_name, app_version=version))
            if sink:
                sink.emit(_trace().leaf(
                    _events().CacheHit(app=app_name), qualifier=app_name,
                    duration_s=time.perf_counter() - loading))
            return cached
        self.misses += 1
        if sink:
            sink.emit(_trace().leaf(
                _events().CacheMiss(app=app_name), qualifier=app_name))
        factory = factory or app_factory(app_name)
        artifacts = build_offline_artifacts(factory(), self.config)
        self.store(app_name, artifacts, app_version=version)
        return artifacts

    # ------------------------------------------------------------------
    # the sidecar recency index
    # ------------------------------------------------------------------
    def _index_path(self) -> Path:
        return self.cache_dir / INDEX_NAME

    def _load_index(self) -> Dict[str, int]:
        try:
            payload = json.loads(self._index_path().read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        return {name: stamp for name, stamp in payload.items()
                if isinstance(name, str) and isinstance(stamp, int)}

    def _save_index(self, index: Dict[str, int]) -> None:
        # Atomic replace; last-writer-wins under concurrency, which is fine
        # for a recency hint (the mtime fallback still orders strays).
        tmp = self._index_path().with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(index, sort_keys=True), encoding="utf-8")
            os.replace(tmp, self._index_path())
        except OSError:
            pass

    def _touch(self, path: Path) -> None:
        """Stamp an entry's last-load time (ns) in the recency index."""
        index = self._load_index()
        index[path.name] = time.time_ns()
        self._save_index(index)
        try:
            os.utime(path)   # best-effort fallback key for foreign readers
        except OSError:
            pass

    def _forget(self, index: Dict[str, int], name: str) -> None:
        index.pop(name, None)

    def _entries_oldest_first(self) -> List[Path]:
        return [path for _, _, path in self._aged_entries()]

    def _aged_entries(self) -> List[Tuple[int, str, Path]]:
        """Entries as (recency_ns, name, path), oldest first.

        Recency comes from the sidecar index; entries missing from it (e.g.
        written by an older version of this class) fall back to their mtime
        in nanoseconds — comparable units, deterministic tie-break on name.
        """
        index = self._load_index()
        aged = []
        for path in self.cache_dir.glob("*.json"):
            if path.name.startswith("."):
                continue
            try:
                mtime_ns = path.stat().st_mtime_ns
            except OSError:
                continue  # deleted under us
            aged.append((index.get(path.name, mtime_ns), path.name, path))
        return sorted(aged)

    def _evict_entry(self, path: Path) -> int:
        """Unlink one entry; returns its reclaimed size (0 if it raced away
        or could not be removed)."""
        try:
            size = path.stat().st_size
            path.unlink()
        except FileNotFoundError:
            return 0
        except OSError:
            return 0
        self.evictions += 1
        sink = _events().resolve(self.sink)
        if sink:
            sink.emit(_trace().leaf(_events().CacheEvicted(entry=path.name),
                                    qualifier=path.name))
        return size

    def _evict_over_limit(self, keep: Path) -> None:
        if self.max_entries is None:
            return
        entries = self._entries_oldest_first()
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        index = self._load_index()
        for victim in entries:
            if excess <= 0:
                break
            if victim == keep:
                continue  # never evict the entry just inserted/served
            try:
                victim.unlink()
            except FileNotFoundError:
                excess -= 1  # already gone: the directory shrank without us
                self._forget(index, victim.name)
                continue
            except OSError:
                continue  # unreadable entry; try the next victim
            excess -= 1
            self.evictions += 1
            self._forget(index, victim.name)
            sink = _events().resolve(self.sink)
            if sink:
                sink.emit(_trace().leaf(
                    _events().CacheEvicted(entry=victim.name),
                    qualifier=victim.name))
        self._save_index(index)

    # ------------------------------------------------------------------
    # garbage collection (age + size bounds)
    # ------------------------------------------------------------------
    def gc(self, *, max_age_s: Optional[float] = None,
           max_total_bytes: Optional[int] = None) -> Dict[str, object]:
        """Sweep the directory against an age and/or total-size budget.

        ``max_age_s``
            Evict every entry whose last load is older than this many
            seconds (by the recency index, mtime fallback).
        ``max_total_bytes``
            After the age pass, evict oldest-first until the summed entry
            sizes fit the budget.

        Returns a stats dict (``evicted``, ``reclaimed_bytes``,
        ``remaining_entries``, ``remaining_bytes``) and emits one
        ``cache_gc`` telemetry event.  With neither bound given, the sweep
        is a no-op inventory pass.
        """
        started = time.perf_counter()
        now_ns = time.time_ns()
        index = self._load_index()
        evicted = 0
        reclaimed = 0
        survivors: List[Tuple[int, str, Path, int]] = []
        for recency_ns, name, path in self._aged_entries():
            try:
                size = path.stat().st_size
            except OSError:
                self._forget(index, name)
                continue
            age_s = max(0.0, (now_ns - recency_ns) / 1e9)
            if max_age_s is not None and age_s > max_age_s:
                freed = self._evict_entry(path)
                if freed or not path.exists():
                    evicted += 1
                    reclaimed += freed
                    self._forget(index, name)
                continue
            survivors.append((recency_ns, name, path, size))
        if max_total_bytes is not None:
            total = sum(size for _, _, _, size in survivors)
            for recency_ns, name, path, size in list(survivors):
                if total <= max_total_bytes:
                    break
                freed = self._evict_entry(path)
                if freed or not path.exists():
                    evicted += 1
                    reclaimed += freed
                    total -= size
                    self._forget(index, name)
                    survivors.remove((recency_ns, name, path, size))
        self._save_index(index)
        remaining = [(name, size) for _, name, _, size in survivors]
        stats: Dict[str, object] = {
            "evicted": evicted,
            "reclaimed_bytes": reclaimed,
            "remaining_entries": len(remaining),
            "remaining_bytes": sum(size for _, size in remaining),
            "max_age_s": max_age_s,
            "max_total_bytes": max_total_bytes,
        }
        seconds = time.perf_counter() - started
        sink = _events().resolve(self.sink)
        if sink:
            sink.emit(_trace().leaf(_events().CacheGc(
                evicted=evicted, reclaimed_bytes=reclaimed,
                remaining_entries=len(remaining),
                remaining_bytes=int(stats["remaining_bytes"]),
                seconds=seconds), duration_s=seconds))
        return stats

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def inventory(self) -> List[Dict[str, object]]:
        """Per-entry view (oldest first): name, size, last-load age."""
        now_ns = time.time_ns()
        rows = []
        for recency_ns, name, path in self._aged_entries():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            rows.append({"entry": name, "bytes": size,
                         "age_s": max(0.0, (now_ns - recency_ns) / 1e9)})
        return rows

    def stats(self) -> Dict[str, object]:
        return {"cache_dir": str(self.cache_dir), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "max_entries": self.max_entries}
