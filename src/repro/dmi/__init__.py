"""The Declarative Model Interface (DMI) — the paper's primary contribution.

DMI sits between an LLM-driven agent and a GUI application and exposes three
declarative primitives:

* **access** — :meth:`repro.dmi.interface.DMI.visit`: given functional
  control ids (from the navigation forest), deterministically navigate to
  each control and perform the primitive interaction;
* **state** — ``set_scrollbar_pos``, ``select_lines``, ``select_paragraphs``,
  ``select_controls``, ``set_toggle_state``, ``set_expanded`` /
  ``set_collapsed``: transition a control to a desired end state regardless
  of its current state;
* **observation** — ``get_texts`` (passive + active): structured data
  retrieval instead of pixel-level perception.

Robustness machinery (fuzzy matching, structured error feedback, retries,
filtering of navigation nodes emitted by imperfectly instruction-following
LLMs) lives in the executor modules.
"""

from repro.dmi.errors import (
    CommandFiltered,
    ControlDisabledFeedback,
    ControlNotFoundFeedback,
    DMIError,
    ExecutionStatus,
    StructuredFeedback,
)
from repro.dmi.matching import FuzzyControlMatcher, MatchResult
from repro.dmi.visit import VisitCommand, VisitExecutor, VisitResult
from repro.dmi.state import StateInterfaces
from repro.dmi.observation import ObservationInterface
from repro.dmi.interface import DMI, DMIConfig, build_dmi_for_app
from repro.dmi.cache import ArtifactCache

__all__ = [
    "ArtifactCache",
    "CommandFiltered",
    "ControlDisabledFeedback",
    "ControlNotFoundFeedback",
    "DMI",
    "DMIConfig",
    "DMIError",
    "ExecutionStatus",
    "FuzzyControlMatcher",
    "MatchResult",
    "ObservationInterface",
    "StateInterfaces",
    "StructuredFeedback",
    "VisitCommand",
    "VisitExecutor",
    "VisitResult",
    "build_dmi_for_app",
]
