"""The DMI facade: offline construction plus the online declarative surface.

``DMI`` bundles everything an agent needs:

* the offline artefacts — navigation forest, core topology, query engine —
  built once per application build (``build_dmi_for_app`` runs the full
  offline phase: rip -> decycle -> externalize -> forest -> core);
* the online interfaces — ``visit`` (access declaration), the state
  declarations and ``get_texts`` (observation declaration);
* prompt assembly and token accounting (usage prompt + core topology +
  passive DataItem digest), which the overhead bench (§5.4) measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.base import Application
from repro.dmi.errors import StructuredFeedback
from repro.dmi.matching import FuzzyControlMatcher
from repro.dmi.observation import ObservationConfig, ObservationInterface, PassiveDigest
from repro.dmi.state import StateInterfaces
from repro.dmi.visit import VisitConfig, VisitExecutor, VisitResult
from repro.llm.tokens import estimate_tokens
from repro.ripping.blocklist import AccessBlocklist
from repro.ripping.ripper import GuiRipper, RipperConfig, RipReport, RipTrace
from repro.ripping.ung import NavigationGraph
from repro.topology.core import CoreTopology, CoreTopologyConfig, extract_core
from repro.topology.decycle import decycle
from repro.topology.externalize import ExternalizationConfig, plan_externalization
from repro.topology.forest import NavigationForest, build_forest
from repro.topology.persistence import ung_digest
from repro.topology.query import QueryEngine, QueryResult
from repro.topology.serialize import SerializationConfig

#: The DMI usage prompt an agent prepends to every call.  Kept as data so the
#: token-overhead bench can measure it; the wording summarises the interface
#: contract the paper describes.
DMI_USAGE_PROMPT = """\
You can operate this application through the Declarative Model Interface (DMI).
Prefer DMI over raw GUI actions.

Access declaration:
  visit([{"id": <target_id>}, {"id": <target_id>, "entry_ref_id": ["<ref_id>"]},
         {"id": <target_id>, "text": "<text>"}, {"shortcut_key": "<keys>"}])
  - Give only FUNCTIONAL (leaf) control ids from the navigation topology below.
  - DMI performs all navigation and the primitive interaction for you.
  - Multiple commands may be batched in one call; do not mix visit with the
    interaction-related interfaces in the same turn.
  - {"further_query": ["<node_id>", ...]} retrieves additional topology
    (use -1 for the whole forest); it cannot be mixed with other commands.

State declaration (operate on controls labelled on the CURRENT screen):
  set_scrollbar_pos(control, x_percent, y_percent)
  select_lines(control, start, end) / select_paragraphs(control, start, end)
  select_controls([controls])
  set_toggle_state(control, on) / set_expanded(control) / set_collapsed(control)

Observation declaration:
  get_texts(control) returns structured text; a truncated digest of on-screen
  data items is already included below.
"""


@dataclass
class DMIConfig:
    """Configuration of the offline build and the online executors."""

    ripper: RipperConfig = field(default_factory=RipperConfig)
    externalization: ExternalizationConfig = field(default_factory=ExternalizationConfig)
    core: CoreTopologyConfig = field(default_factory=CoreTopologyConfig)
    serialization: SerializationConfig = field(default_factory=SerializationConfig)
    visit: VisitConfig = field(default_factory=VisitConfig)
    observation: ObservationConfig = field(default_factory=ObservationConfig)


@dataclass
class OfflineArtifacts:
    """Everything produced by the offline modeling phase for one application."""

    ung: NavigationGraph
    forest: NavigationForest
    core: CoreTopology
    rip_report: RipReport

    def summary(self) -> Dict[str, object]:
        return {
            "app": self.ung.app_name,
            "ung_nodes": self.ung.node_count(),
            "ung_edges": self.ung.edge_count(),
            "merge_nodes": len(self.ung.merge_node_ids()),
            "forest_nodes": self.forest.node_count(),
            "shared_subtrees": len(self.forest.shared_subtrees),
            "core_nodes": self.core.visible_node_count(),
            "core_tokens": self.core.token_estimate(),
            "modeling_seconds": self.rip_report.duration_seconds,
        }


class DMI:
    """The online DMI instance bound to one live application."""

    def __init__(self, app: Application, artifacts: OfflineArtifacts,
                 config: Optional[DMIConfig] = None) -> None:
        self.app = app
        self.artifacts = artifacts
        self.config = config or DMIConfig()
        self.matcher = FuzzyControlMatcher()
        self.visit_executor = VisitExecutor(app, artifacts.forest, matcher=self.matcher,
                                            config=self.config.visit)
        self.state = StateInterfaces(app, matcher=self.matcher)
        self.observation = ObservationInterface(app, matcher=self.matcher,
                                                config=self.config.observation)
        self.query_engine = QueryEngine(artifacts.forest, artifacts.core,
                                        serialization=self.config.serialization)

    # ------------------------------------------------------------------
    # prompt assembly / token accounting
    # ------------------------------------------------------------------
    @property
    def forest(self) -> NavigationForest:
        return self.artifacts.forest

    @property
    def core(self) -> CoreTopology:
        return self.artifacts.core

    def usage_prompt(self) -> str:
        return DMI_USAGE_PROMPT

    def passive_digest(self) -> PassiveDigest:
        return self.observation.passive_digest()

    def initial_context(self) -> str:
        """Usage prompt + core topology + passive DataItem digest."""
        return "\n\n".join([
            self.usage_prompt(),
            "## Navigation topology (core view)",
            self.query_engine.initial_prompt_text(),
            self.passive_digest().to_prompt_text(),
        ])

    def context_token_breakdown(self) -> Dict[str, int]:
        """Token cost of each context component (paper §5.4)."""
        usage = estimate_tokens(self.usage_prompt())
        topology = self.core.token_estimate()
        digest = self.passive_digest().token_estimate()
        return {
            "usage_prompt": usage,
            "navigation_topology": topology,
            "dataitem_digest": digest,
            "total": usage + topology + digest,
        }

    # ------------------------------------------------------------------
    # declarative surface
    # ------------------------------------------------------------------
    def visit(self, commands: Sequence[Dict[str, object]]) -> VisitResult:
        """Access declaration."""
        result = self.visit_executor.execute(commands)
        if result.further_query_ids:
            # Answer the query through the engine so the caller gets text.
            query = self.further_query(result.further_query_ids)
            from repro.dmi.errors import ok_feedback

            result.feedback.append(ok_feedback(
                "further_query_answer",
                target=str(result.further_query_ids),
                tokens=query.tokens,
            ))
        return result

    def further_query(self, node_ids: Sequence[int]) -> QueryResult:
        return self.query_engine.further_query(list(node_ids))

    # state declarations --------------------------------------------------
    def set_scrollbar_pos(self, control_label: str, x_percent: Optional[float] = None,
                          y_percent: Optional[float] = None) -> StructuredFeedback:
        return self.state.set_scrollbar_pos(control_label, x_percent, y_percent)

    def select_lines(self, control_label: str, start: int,
                     end: Optional[int] = None) -> StructuredFeedback:
        return self.state.select_lines(control_label, start, end)

    def select_paragraphs(self, control_label: str, start: int,
                          end: Optional[int] = None) -> StructuredFeedback:
        return self.state.select_paragraphs(control_label, start, end)

    def select_controls(self, control_labels: Sequence[str],
                        mode: str = "replace") -> StructuredFeedback:
        return self.state.select_controls(control_labels, mode=mode)

    def set_toggle_state(self, control_label: str, on: bool) -> StructuredFeedback:
        return self.state.set_toggle_state(control_label, on)

    def set_expanded(self, control_label: str) -> StructuredFeedback:
        return self.state.set_expanded(control_label)

    def set_collapsed(self, control_label: str) -> StructuredFeedback:
        return self.state.set_collapsed(control_label)

    def set_value(self, control_label: str, value: object) -> StructuredFeedback:
        return self.state.set_value(control_label, value)

    # observation declaration ---------------------------------------------
    def get_texts(self, control_label: Optional[str] = None) -> StructuredFeedback:
        return self.observation.get_texts(control_label)


# ----------------------------------------------------------------------
# offline phase
# ----------------------------------------------------------------------
def build_offline_artifacts(app: Application, config: Optional[DMIConfig] = None,
                            blocklist: Optional[AccessBlocklist] = None) -> OfflineArtifacts:
    """Run the offline modeling phase on (a scratch instance of) ``app``."""
    config = config or DMIConfig()
    ripper = GuiRipper(app, blocklist=blocklist, config=config.ripper)
    ung = ripper.rip()
    return rebuild_offline_artifacts(ung, config, rip_report=ripper.report)


def rebuild_offline_artifacts(ung: NavigationGraph, config: Optional[DMIConfig] = None,
                              rip_report: Optional[RipReport] = None) -> OfflineArtifacts:
    """Derive the forest/core artefacts from an already-ripped UNG.

    The transformation pipeline (decycle -> externalize -> forest -> core) is
    a deterministic function of the UNG, so a graph persisted via
    :mod:`repro.topology.persistence` — on this machine or another — yields
    artefacts identical to a fresh offline build without touching the GUI.
    """
    config = config or DMIConfig()
    dag = decycle(ung)
    plan = plan_externalization(dag, config.externalization)
    forest = build_forest(ung, dag=dag, plan=plan)
    core = extract_core(forest, config.core)
    return OfflineArtifacts(ung=ung, forest=forest, core=core,
                            rip_report=rip_report or RipReport(app_name=ung.app_name))


def refresh_offline_artifacts(app: Application, prior: OfflineArtifacts,
                              prior_trace: Optional[RipTrace],
                              config: Optional[DMIConfig] = None,
                              blocklist: Optional[AccessBlocklist] = None,
                              ) -> "Tuple[OfflineArtifacts, RipTrace]":
    """Incrementally refresh offline artefacts after UI mutations.

    Re-rips ``app`` incrementally against the prior UNG + trace (see
    :meth:`repro.ripping.ripper.GuiRipper.rip_incremental`), then re-derives
    the downstream artefacts.  When the incremental rip proves the UNG
    unchanged (same canonical bytes), the prior forest/core are reused
    as-is — re-deriving them would reproduce identical objects, since the
    decycle -> externalize -> forest -> core pipeline is a deterministic
    function of the UNG.  Otherwise the pipeline re-runs on the patched
    UNG, which still reuses the expensive part: the rip itself only visited
    the dirty subtrees.

    Returns ``(artifacts, trace)`` — chain the returned trace into the next
    refresh.
    """
    config = config or DMIConfig()
    ripper = GuiRipper(app, blocklist=blocklist, config=config.ripper)
    ung = ripper.rip_incremental(prior.ung, prior_trace)
    if ung_digest(ung) == ung_digest(prior.ung):
        artifacts = OfflineArtifacts(ung=ung, forest=prior.forest,
                                     core=prior.core, rip_report=ripper.report)
    else:
        artifacts = rebuild_offline_artifacts(ung, config,
                                              rip_report=ripper.report)
    return artifacts, ripper.trace


def build_dmi_for_app(app: Application, config: Optional[DMIConfig] = None,
                      artifacts: Optional[OfflineArtifacts] = None,
                      blocklist: Optional[AccessBlocklist] = None) -> DMI:
    """Build a DMI instance for ``app``.

    ``artifacts`` may be passed to reuse an offline model built from another
    instance of the same application build (the paper notes the model is
    version-specific but reusable across machines); otherwise the offline
    phase runs against ``app`` itself.
    """
    config = config or DMIConfig()
    if artifacts is None:
        artifacts = build_offline_artifacts(app, config, blocklist=blocklist)
    return DMI(app, artifacts, config)
