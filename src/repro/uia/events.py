"""UIA-style event notifications.

The paper registers a UIA event handler so applications expose their full
control trees (avoiding lazy-loading artefacts) and uses window listeners to
detect new top-level or modal windows during GUI ripping.  This module
provides a minimal publish/subscribe bus carrying the same event kinds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.uia.element import UIElement


class EventKind(str, enum.Enum):
    """Kinds of accessibility events emitted by the GUI runtime."""

    STRUCTURE_CHANGED = "StructureChanged"
    WINDOW_OPENED = "WindowOpened"
    WINDOW_CLOSED = "WindowClosed"
    INVOKED = "Invoked"
    VALUE_CHANGED = "ValueChanged"
    SELECTION_CHANGED = "SelectionChanged"
    SCROLL_CHANGED = "ScrollChanged"
    FOCUS_CHANGED = "FocusChanged"


@dataclass
class UIAEvent:
    """A single accessibility event."""

    kind: EventKind
    source: Optional[UIElement] = None
    detail: Dict[str, object] = field(default_factory=dict)


Handler = Callable[[UIAEvent], None]


class EventBus:
    """A simple synchronous event bus.

    Handlers may subscribe to a specific :class:`EventKind` or to all events
    (``kind=None``).  Events are also recorded in :attr:`history` so tests and
    the ripper can inspect what happened during an interaction without
    registering handlers up front.
    """

    def __init__(self, history_limit: int = 10000) -> None:
        self._handlers: Dict[Optional[EventKind], List[Handler]] = {}
        self.history: List[UIAEvent] = []
        self._history_limit = history_limit

    def subscribe(self, handler: Handler, kind: Optional[EventKind] = None) -> Callable[[], None]:
        """Register ``handler`` and return a callable that unsubscribes it."""
        self._handlers.setdefault(kind, []).append(handler)

        def unsubscribe() -> None:
            handlers = self._handlers.get(kind, [])
            if handler in handlers:
                handlers.remove(handler)

        return unsubscribe

    def emit(self, event: UIAEvent) -> None:
        """Dispatch ``event`` to all matching handlers and record it."""
        self.history.append(event)
        if len(self.history) > self._history_limit:
            del self.history[: len(self.history) - self._history_limit]
        for handler in list(self._handlers.get(event.kind, [])):
            handler(event)
        for handler in list(self._handlers.get(None, [])):
            handler(event)

    def emit_kind(self, kind: EventKind, source: Optional[UIElement] = None, **detail) -> UIAEvent:
        """Convenience: build and emit an event in one call."""
        event = UIAEvent(kind=kind, source=source, detail=dict(detail))
        self.emit(event)
        return event

    def events_of_kind(self, kind: EventKind) -> List[UIAEvent]:
        """Return all recorded events of a given kind."""
        return [e for e in self.history if e.kind == kind]

    def clear_history(self) -> None:
        self.history.clear()
