"""XPath-like control identifiers (paper §4.1, "Control identifier synthesis").

UIA does not guarantee globally unique ``AutomationId`` values, so the paper
labels each UNG node with a composite identifier::

    primary_id|control_type|ancestor_path

where ``primary_id`` is the automation id, falling back to the control name,
falling back to ``[Unnamed]``; ``control_type`` is the UIA type name; and
``ancestor_path`` is a slash-delimited sequence of ancestor primary ids
(root first).  Index-based addressing is deliberately avoided because dynamic
menus shift indices unpredictably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.uia.control_types import ControlType
from repro.uia.element import UIElement

#: Field separator inside a control identifier.
FIELD_SEPARATOR = "|"
#: Segment separator inside the ancestor path.
PATH_SEPARATOR = "/"
#: Fallback primary id for controls with neither automation id nor name.
UNNAMED = "[Unnamed]"


@dataclass(frozen=True)
class ControlIdentifier:
    """Parsed form of a composite control identifier."""

    primary_id: str
    control_type: ControlType
    ancestor_path: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return FIELD_SEPARATOR.join(
            (
                _escape(self.primary_id),
                self.control_type.value,
                PATH_SEPARATOR.join(_escape(seg) for seg in self.ancestor_path),
            )
        )

    @property
    def short_name(self) -> str:
        """Human-oriented short label (primary id only)."""
        return self.primary_id

    def matches_element(self, element: UIElement) -> bool:
        """Exact match of primary id and control type against an element."""
        return (
            element.primary_id == self.primary_id
            and element.control_type == self.control_type
        )


def _escape(segment: str) -> str:
    """Escape separator characters occurring inside names."""
    return segment.replace("\\", "\\\\").replace(FIELD_SEPARATOR, "\\|").replace(
        PATH_SEPARATOR, "\\/"
    )


def _unescape(segment: str) -> str:
    out = []
    i = 0
    while i < len(segment):
        ch = segment[i]
        if ch == "\\" and i + 1 < len(segment):
            out.append(segment[i + 1])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _split_escaped(text: str, separator: str) -> list:
    """Split on ``separator`` while honouring backslash escapes."""
    parts = []
    current = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            current.append(ch)
            current.append(text[i + 1])
            i += 2
            continue
        if ch == separator:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    parts.append("".join(current))
    return parts


def synthesize_identifier(element: UIElement) -> ControlIdentifier:
    """Build the composite identifier for ``element`` from its current position."""
    ancestors = tuple(a.primary_id for a in reversed(element.ancestors()))
    return ControlIdentifier(
        primary_id=element.primary_id,
        control_type=element.control_type,
        ancestor_path=ancestors,
    )


def identifier_string(element: UIElement) -> str:
    """Convenience wrapper returning ``str(synthesize_identifier(element))``."""
    return str(synthesize_identifier(element))


def parse_identifier(text: str) -> ControlIdentifier:
    """Parse a composite identifier string back into a :class:`ControlIdentifier`.

    Raises
    ------
    ValueError
        If the string does not have exactly three ``|``-separated fields or
        the control type is unknown.
    """
    fields = _split_escaped(text, FIELD_SEPARATOR)
    if len(fields) != 3:
        raise ValueError(
            f"control identifier must have 3 '|'-separated fields, got {len(fields)}: {text!r}"
        )
    primary_raw, type_raw, path_raw = fields
    try:
        control_type = ControlType(type_raw)
    except ValueError as exc:
        raise ValueError(f"unknown control type {type_raw!r} in identifier {text!r}") from exc
    if path_raw:
        ancestors = tuple(_unescape(seg) for seg in _split_escaped(path_raw, PATH_SEPARATOR))
    else:
        ancestors = ()
    return ControlIdentifier(
        primary_id=_unescape(primary_raw),
        control_type=control_type,
        ancestor_path=ancestors,
    )


def identifiers_equal(a: str, b: str) -> bool:
    """Structural equality of two identifier strings (ignores escaping noise)."""
    return parse_identifier(a) == parse_identifier(b)


def find_by_identifier(root: UIElement, identifier: ControlIdentifier) -> Optional[UIElement]:
    """Locate an element under ``root`` by exact identifier match.

    The search requires primary id and control type to match and the ancestor
    path to match as a suffix (the stored path may have been captured from a
    different root).  Returns the first match in pre-order, or None.
    """
    for node in root.iter_subtree():
        if not identifier.matches_element(node):
            continue
        node_path = tuple(a.primary_id for a in reversed(node.ancestors()))
        if _is_suffix(identifier.ancestor_path, node_path) or _is_suffix(
            node_path, identifier.ancestor_path
        ):
            return node
    return None


def _is_suffix(short: Tuple[str, ...], long: Tuple[str, ...]) -> bool:
    if len(short) > len(long):
        return False
    if not short:
        return True
    return long[-len(short):] == short
