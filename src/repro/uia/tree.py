"""Accessibility-tree traversal helpers.

These mirror the UIA ``TreeWalker`` facilities that both the ripper (to take
differential captures of the visible control set) and DMI's executor (to
match a navigation path against the current window hierarchy) rely on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from repro.uia.control_types import ControlType
from repro.uia.element import UIElement

Predicate = Callable[[UIElement], bool]


def iter_subtree(root: UIElement) -> Iterator[UIElement]:
    """Yield ``root`` and every descendant, depth-first pre-order."""
    return root.iter_subtree()


def iter_descendants(root: UIElement) -> Iterator[UIElement]:
    """Yield every descendant of ``root`` (excluding ``root``)."""
    return root.iter_descendants()


def tree_size(root: UIElement) -> int:
    """Number of elements in the subtree rooted at ``root`` (including root)."""
    return sum(1 for _ in root.iter_subtree())


def tree_depth(root: UIElement) -> int:
    """Maximum depth of the subtree (a lone root has depth 1)."""
    best = 0
    base = root.depth()
    for node in root.iter_subtree():
        best = max(best, node.depth() - base + 1)
    return best


def find_first(root: UIElement, predicate: Predicate) -> Optional[UIElement]:
    """Return the first element (pre-order) satisfying ``predicate``."""
    for node in root.iter_subtree():
        if predicate(node):
            return node
    return None


def find_all(root: UIElement, predicate: Predicate) -> List[UIElement]:
    """Return every element (pre-order) satisfying ``predicate``."""
    return [node for node in root.iter_subtree() if predicate(node)]


def visible_elements(root: UIElement) -> List[UIElement]:
    """Return all elements of the subtree that are currently on screen.

    This is the set the ripper captures before/after an interaction and the
    set the GUI-only agent baseline can label and act upon.
    """
    result: List[UIElement] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if not node.visible:
            # An invisible node hides its entire subtree.
            continue
        result.append(node)
        stack.extend(reversed(node.children))
    return result


def elements_of_type(root: UIElement, control_type: ControlType) -> List[UIElement]:
    """Return every element in the subtree with the given control type."""
    wanted = ControlType(control_type)
    return find_all(root, lambda e: e.control_type == wanted)


class TreeWalker:
    """A filtered walker over the accessibility tree (UIA ``TreeWalker``).

    Parameters
    ----------
    condition:
        Optional predicate restricting which elements the walker "sees".
        Elements failing the condition are skipped, but their children are
        still considered (UIA "raw" vs "control" view behaviour).
    """

    def __init__(self, condition: Optional[Predicate] = None):
        self.condition = condition or (lambda _e: True)

    def _visible_children(self, element: UIElement) -> List[UIElement]:
        result: List[UIElement] = []
        for child in element.children:
            if self.condition(child):
                result.append(child)
            else:
                result.extend(self._visible_children(child))
        return result

    def get_first_child(self, element: UIElement) -> Optional[UIElement]:
        children = self._visible_children(element)
        return children[0] if children else None

    def get_last_child(self, element: UIElement) -> Optional[UIElement]:
        children = self._visible_children(element)
        return children[-1] if children else None

    def get_children(self, element: UIElement) -> List[UIElement]:
        return self._visible_children(element)

    def get_parent(self, element: UIElement) -> Optional[UIElement]:
        node = element.parent
        while node is not None and not self.condition(node):
            node = node.parent
        return node

    def get_next_sibling(self, element: UIElement) -> Optional[UIElement]:
        parent = element.parent
        if parent is None:
            return None
        siblings = self._visible_children(parent)
        try:
            index = siblings.index(element)
        except ValueError:
            return None
        return siblings[index + 1] if index + 1 < len(siblings) else None

    def walk(self, root: UIElement) -> Iterator[UIElement]:
        """Depth-first pre-order walk of the filtered view."""
        if self.condition(root):
            yield root
        stack = list(reversed(self.get_children(root)))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.get_children(node)))


#: Walker matching UIA's "control view": skips purely decorative elements.
CONTROL_VIEW_WALKER = TreeWalker(
    condition=lambda e: e.control_type
    not in {ControlType.SEPARATOR, ControlType.TOOL_TIP, ControlType.THUMB}
)


def snapshot(root: UIElement, only_visible: bool = True) -> List[dict]:
    """Return a serialisable snapshot of the (visible) subtree.

    Each entry records the properties the ripper's differential capture and
    the agent's labelling step need.  The snapshot is order-stable
    (pre-order), so diffing two snapshots yields deterministic results.
    """
    nodes = visible_elements(root) if only_visible else list(root.iter_subtree())
    result = []
    for node in nodes:
        result.append(
            {
                "runtime_id": node.runtime_id,
                "name": node.name,
                "automation_id": node.automation_id,
                "control_type": node.control_type.value,
                "enabled": node.is_enabled,
                "depth": node.depth(),
                "rect": (node.rect.left, node.rect.top, node.rect.width, node.rect.height),
                "patterns": sorted(p.value for p in node.patterns),
            }
        )
    return result


def diff_snapshots(before: Iterable[dict], after: Iterable[dict]) -> List[dict]:
    """Return entries present in ``after`` but not in ``before``.

    Presence is keyed on ``runtime_id`` so that elements that merely moved or
    were re-labelled are not reported as new.
    """
    before_ids = {entry["runtime_id"] for entry in before}
    return [entry for entry in after if entry["runtime_id"] not in before_ids]
