"""UIA control types.

Windows UI Automation defines a closed set of 41 control types (see the
paper, Insight #3).  The enumeration below mirrors that set.  Control types
are one of the three ingredients of a control identifier
(``primary_id|control_type|ancestor_path``) and drive several policies in the
reproduction:

* which controls are *navigational* (containers that reveal other controls)
  versus *functional* (leaves that trigger application behaviour);
* which controls receive a full description in the serialized topology
  (:data:`KEY_CONTROL_TYPES`);
* which controls the ripping explorer will attempt to activate.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class ControlType(str, enum.Enum):
    """The 41 UIA control types.

    The string values match the UIA programmatic names (without the
    ``UIA_...ControlTypeId`` prefix), e.g. ``"Button"``, ``"TabItem"``.
    """

    APP_BAR = "AppBar"
    BUTTON = "Button"
    CALENDAR = "Calendar"
    CHECK_BOX = "CheckBox"
    COMBO_BOX = "ComboBox"
    CUSTOM = "Custom"
    DATA_GRID = "DataGrid"
    DATA_ITEM = "DataItem"
    DOCUMENT = "Document"
    EDIT = "Edit"
    GROUP = "Group"
    HEADER = "Header"
    HEADER_ITEM = "HeaderItem"
    HYPERLINK = "Hyperlink"
    IMAGE = "Image"
    LIST = "List"
    LIST_ITEM = "ListItem"
    MENU = "Menu"
    MENU_BAR = "MenuBar"
    MENU_ITEM = "MenuItem"
    PANE = "Pane"
    PROGRESS_BAR = "ProgressBar"
    RADIO_BUTTON = "RadioButton"
    SCROLL_BAR = "ScrollBar"
    SEMANTIC_ZOOM = "SemanticZoom"
    SEPARATOR = "Separator"
    SLIDER = "Slider"
    SPINNER = "Spinner"
    SPLIT_BUTTON = "SplitButton"
    STATUS_BAR = "StatusBar"
    TAB = "Tab"
    TAB_ITEM = "TabItem"
    TABLE = "Table"
    TEXT = "Text"
    THUMB = "Thumb"
    TITLE_BAR = "TitleBar"
    TOOL_BAR = "ToolBar"
    TOOL_TIP = "ToolTip"
    TREE = "Tree"
    TREE_ITEM = "TreeItem"
    WINDOW = "Window"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Control types whose descriptions are always included in the serialized
#: topology (paper §4.2, "Truncating descriptions").
KEY_CONTROL_TYPES: FrozenSet[ControlType] = frozenset(
    {
        ControlType.MENU,
        ControlType.MENU_ITEM,
        ControlType.TAB_ITEM,
        ControlType.COMBO_BOX,
        ControlType.GROUP,
        ControlType.BUTTON,
        ControlType.SPLIT_BUTTON,
    }
)

#: Control types that usually *contain* other controls rather than triggering
#: application functionality themselves.  Used as a heuristic by the ripper
#: and by topology pruning.
CONTAINER_CONTROL_TYPES: FrozenSet[ControlType] = frozenset(
    {
        ControlType.WINDOW,
        ControlType.PANE,
        ControlType.GROUP,
        ControlType.TAB,
        ControlType.MENU,
        ControlType.MENU_BAR,
        ControlType.TOOL_BAR,
        ControlType.LIST,
        ControlType.TREE,
        ControlType.TABLE,
        ControlType.DATA_GRID,
        ControlType.HEADER,
        ControlType.STATUS_BAR,
        ControlType.TITLE_BAR,
        ControlType.APP_BAR,
        ControlType.SEMANTIC_ZOOM,
    }
)

#: Control types that are typically interactive in a "click activates
#: something" sense; the ripper uses this to decide which candidates to
#: explore.
CLICKABLE_CONTROL_TYPES: FrozenSet[ControlType] = frozenset(
    {
        ControlType.BUTTON,
        ControlType.SPLIT_BUTTON,
        ControlType.MENU_ITEM,
        ControlType.TAB_ITEM,
        ControlType.LIST_ITEM,
        ControlType.TREE_ITEM,
        ControlType.CHECK_BOX,
        ControlType.RADIO_BUTTON,
        ControlType.COMBO_BOX,
        ControlType.HYPERLINK,
        ControlType.EDIT,
        ControlType.SPINNER,
        ControlType.SLIDER,
    }
)

#: Control types that never trigger navigation (they are purely informative
#: or structural) and are therefore skipped by the ripper.
NON_NAVIGATING_CONTROL_TYPES: FrozenSet[ControlType] = frozenset(
    {
        ControlType.TEXT,
        ControlType.IMAGE,
        ControlType.SEPARATOR,
        ControlType.PROGRESS_BAR,
        ControlType.TOOL_TIP,
        ControlType.THUMB,
        ControlType.STATUS_BAR,
        ControlType.TITLE_BAR,
    }
)


def is_container_type(control_type: ControlType) -> bool:
    """Return True if ``control_type`` is a structural container type."""
    return control_type in CONTAINER_CONTROL_TYPES


def is_clickable_type(control_type: ControlType) -> bool:
    """Return True if controls of this type are activated by a click."""
    return control_type in CLICKABLE_CONTROL_TYPES


def all_control_types() -> tuple:
    """Return every defined control type (useful for property tests)."""
    return tuple(ControlType)
