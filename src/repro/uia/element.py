"""The accessibility element (UI control node).

:class:`UIElement` is the single node type of the simulated accessibility
tree.  Widgets in :mod:`repro.gui.widgets` subclass it to add behaviour, but
every consumer in the reproduction (the ripper, DMI's executor, the agent
baseline) sees only the UIA surface defined here: name, automation id,
control type, enabled/offscreen flags, bounding rectangle, children, and the
set of supported control patterns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.uia.control_types import ControlType
from repro.uia.patterns import PatternId, UIAPattern

_runtime_id_counter = itertools.count(1)


def notify_ui_change(element: "UIElement", kind: str) -> None:
    """Route a UI mutation to the owning application's change log, if any.

    Duck-typed on purpose: the accessibility layer knows nothing about
    :mod:`repro.apps`, but an application attaches itself to its window root
    as ``root.application``.  Elements without an owning application (bare
    trees in unit tests, dialogs still under construction) publish nothing,
    which is exactly right — only mutations of a *live* UI are observable.
    """
    app = getattr(element.root(), "application", None)
    notify = getattr(app, "notify_ui_changed", None)
    if notify is not None:
        notify(kind, element)


@dataclass(frozen=True)
class BoundingRect:
    """Screen-space bounding rectangle of a control (pixels)."""

    left: float = 0.0
    top: float = 0.0
    width: float = 0.0
    height: float = 0.0

    @property
    def right(self) -> float:
        return self.left + self.width

    @property
    def bottom(self) -> float:
        return self.top + self.height

    @property
    def center(self) -> tuple:
        return (self.left + self.width / 2.0, self.top + self.height / 2.0)

    @property
    def area(self) -> float:
        return max(0.0, self.width) * max(0.0, self.height)

    def contains(self, x: float, y: float) -> bool:
        """Return True if the point (x, y) falls inside the rectangle."""
        return self.left <= x < self.right and self.top <= y < self.bottom

    def intersects(self, other: "BoundingRect") -> bool:
        return not (
            other.left >= self.right
            or other.right <= self.left
            or other.top >= self.bottom
            or other.bottom <= self.top
        )


class UIElement:
    """A node in the accessibility tree.

    Parameters
    ----------
    name:
        Human-readable control name (UIA ``Name`` property).
    control_type:
        One of the 41 UIA control types.
    automation_id:
        Developer-assigned identifier (may be empty; uniqueness is *not*
        guaranteed, mirroring real UIA).
    description:
        Free-form help/description text (UIA ``HelpText`` /
        ``FullDescription``).
    enabled / visible:
        The UIA ``IsEnabled`` and (negated) ``IsOffscreen`` properties.
        Visibility here is the element's *own* flag; whether it is actually
        on screen also depends on its ancestors (see :meth:`is_on_screen`).
    """

    def __init__(
        self,
        name: str = "",
        control_type: ControlType = ControlType.CUSTOM,
        automation_id: str = "",
        description: str = "",
        enabled: bool = True,
        visible: bool = True,
        rect: Optional[BoundingRect] = None,
    ) -> None:
        self.name = name
        self.control_type = ControlType(control_type)
        self.automation_id = automation_id
        self.description = description
        self.is_enabled = enabled
        self.visible = visible
        self.rect = rect or BoundingRect()
        self.text: str = ""
        self.runtime_id: int = next(_runtime_id_counter)
        self.parent: Optional[UIElement] = None
        self.children: List[UIElement] = []
        self.patterns: Dict[PatternId, UIAPattern] = {}
        #: Free-form property bag for application metadata (e.g. semantic
        #: tags used by checkers); never read by DMI itself.
        self.properties: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def add_child(self, child: "UIElement", index: Optional[int] = None) -> "UIElement":
        """Attach ``child`` to this element and return it."""
        if child.parent is not None:
            child.parent.remove_child(child)
        child.parent = self
        if index is None:
            self.children.append(child)
        else:
            self.children.insert(index, child)
        notify_ui_change(child, "widget_added")
        return child

    def add_children(self, children: List["UIElement"]) -> List["UIElement"]:
        for child in children:
            self.add_child(child)
        return children

    def remove_child(self, child: "UIElement") -> None:
        if child in self.children:
            # Published before detaching: afterwards the child no longer
            # reaches the window root that owns the change log.
            notify_ui_change(child, "widget_removed")
            self.children.remove(child)
            child.parent = None

    def clear_children(self) -> None:
        for child in list(self.children):
            self.remove_child(child)

    def ancestors(self) -> List["UIElement"]:
        """Return ancestors from the immediate parent to the root."""
        chain = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def root(self) -> "UIElement":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self) -> int:
        """Distance to the root (root has depth 0)."""
        return len(self.ancestors())

    def iter_descendants(self) -> Iterator["UIElement"]:
        """Yield all descendants in depth-first pre-order (excluding self)."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_subtree(self) -> Iterator["UIElement"]:
        """Yield self followed by all descendants (depth-first pre-order)."""
        yield self
        for node in self.iter_descendants():
            yield node

    # ------------------------------------------------------------------
    # patterns
    # ------------------------------------------------------------------
    def add_pattern(self, pattern: UIAPattern) -> UIAPattern:
        """Register a pattern instance on this element and return it."""
        self.patterns[pattern.pattern_id] = pattern
        return pattern

    def get_pattern(self, pattern_id: PatternId) -> Optional[UIAPattern]:
        """Return the pattern with ``pattern_id`` or None if unsupported."""
        return self.patterns.get(pattern_id)

    def supports_pattern(self, pattern_id: PatternId) -> bool:
        return pattern_id in self.patterns

    # ------------------------------------------------------------------
    # visibility
    # ------------------------------------------------------------------
    def is_on_screen(self) -> bool:
        """True if this element and every ancestor is visible."""
        node: Optional[UIElement] = self
        while node is not None:
            if not node.visible:
                return False
            node = node.parent
        return True

    @property
    def is_offscreen(self) -> bool:
        """The UIA ``IsOffscreen`` property (inverse of :meth:`is_on_screen`)."""
        return not self.is_on_screen()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @property
    def primary_id(self) -> str:
        """automation_id, falling back to name, falling back to "[Unnamed]".

        This mirrors the paper's control-identifier synthesis (§4.1).
        """
        if self.automation_id:
            return self.automation_id
        if self.name:
            return self.name
        return "[Unnamed]"

    def ancestor_path(self) -> str:
        """Slash-delimited sequence of ancestor primary ids, root first."""
        names = [a.primary_id for a in reversed(self.ancestors())]
        return "/".join(names)

    def find(self, **criteria) -> Optional["UIElement"]:
        """Return the first descendant matching all keyword criteria.

        Supported criteria: ``name``, ``automation_id``, ``control_type``,
        ``name_contains``.
        """
        for node in self.iter_descendants():
            if _matches(node, criteria):
                return node
        return None

    def find_all(self, **criteria) -> List["UIElement"]:
        """Return all descendants matching all keyword criteria."""
        return [node for node in self.iter_descendants() if _matches(node, criteria)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UIElement(name={self.name!r}, type={self.control_type.value}, "
            f"automation_id={self.automation_id!r}, children={len(self.children)})"
        )


def _matches(node: UIElement, criteria: Dict[str, object]) -> bool:
    for key, expected in criteria.items():
        if key == "name" and node.name != expected:
            return False
        elif key == "automation_id" and node.automation_id != expected:
            return False
        elif key == "control_type" and node.control_type != ControlType(expected):
            return False
        elif key == "name_contains" and str(expected).lower() not in node.name.lower():
            return False
        elif key not in {"name", "automation_id", "control_type", "name_contains"}:
            raise TypeError(f"unsupported search criterion {key!r}")
    return True
