"""UIA control patterns.

UIA describes what a control *can do* via a finite set of control patterns
(34 in the real framework).  DMI's state and observation declarations are
built directly on these patterns (paper Table 2): ``set_scrollbar_pos`` on
``ScrollPattern``, ``select_lines`` on ``TextPattern``, ``select_controls``
on ``SelectionPattern``/``SelectionItemPattern``, ``get_texts`` on
``TextPattern``/``ValuePattern``, ``set_toggle_state`` on ``TogglePattern``
and ``set_expanded``/``set_collapsed`` on ``ExpandCollapsePattern``.

This module implements the subset of patterns the reproduction exercises.
Each pattern is a small object attached to a :class:`repro.uia.element.UIElement`;
widgets wire pattern callbacks to application behaviour.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.uia.element import UIElement


class PatternId(str, enum.Enum):
    """Identifiers for the control patterns implemented by the substrate."""

    INVOKE = "InvokePattern"
    TOGGLE = "TogglePattern"
    EXPAND_COLLAPSE = "ExpandCollapsePattern"
    SCROLL = "ScrollPattern"
    SELECTION = "SelectionPattern"
    SELECTION_ITEM = "SelectionItemPattern"
    TEXT = "TextPattern"
    VALUE = "ValuePattern"
    RANGE_VALUE = "RangeValuePattern"
    GRID = "GridPattern"
    GRID_ITEM = "GridItemPattern"
    WINDOW = "WindowPattern"
    LEGACY_ACCESSIBLE = "LegacyIAccessiblePattern"


class PatternNotSupportedError(RuntimeError):
    """Raised when a pattern operation is requested on an unsupporting control."""


class ElementDisabledError(RuntimeError):
    """Raised when a pattern operation targets a disabled control."""


class UIAPattern:
    """Base class for all control patterns.

    Parameters
    ----------
    element:
        The UI element this pattern instance is attached to.
    """

    pattern_id: PatternId

    def __init__(self, element: "UIElement") -> None:
        self.element = element

    def _require_enabled(self) -> None:
        if not self.element.is_enabled:
            raise ElementDisabledError(
                f"control {self.element.name!r} ({self.element.control_type}) is disabled"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} on {self.element.name!r}>"


class InvokePattern(UIAPattern):
    """Single, unambiguous action (a click on a Button, MenuItem, ...)."""

    pattern_id = PatternId.INVOKE

    def __init__(self, element: "UIElement", on_invoke: Optional[Callable[[], None]] = None):
        super().__init__(element)
        self._on_invoke = on_invoke
        self.invoke_count = 0

    def invoke(self) -> None:
        """Trigger the control's default action."""
        self._require_enabled()
        self.invoke_count += 1
        if self._on_invoke is not None:
            self._on_invoke()


class ToggleState(enum.IntEnum):
    OFF = 0
    ON = 1
    INDETERMINATE = 2


class TogglePattern(UIAPattern):
    """Two/three-state controls such as check boxes."""

    pattern_id = PatternId.TOGGLE

    def __init__(
        self,
        element: "UIElement",
        state: ToggleState = ToggleState.OFF,
        on_change: Optional[Callable[[ToggleState], None]] = None,
    ):
        super().__init__(element)
        self.state = ToggleState(state)
        self._on_change = on_change

    def toggle(self) -> ToggleState:
        """Cycle OFF -> ON -> OFF (indeterminate resolves to ON)."""
        self._require_enabled()
        self.state = ToggleState.OFF if self.state == ToggleState.ON else ToggleState.ON
        if self._on_change is not None:
            self._on_change(self.state)
        return self.state

    def set_state(self, state: ToggleState) -> ToggleState:
        """Set the toggle state directly (used by DMI's ``set_toggle_state``)."""
        self._require_enabled()
        state = ToggleState(state)
        if state != self.state:
            self.state = state
            if self._on_change is not None:
                self._on_change(self.state)
        return self.state


class ExpandCollapseState(enum.IntEnum):
    COLLAPSED = 0
    EXPANDED = 1
    PARTIALLY_EXPANDED = 2
    LEAF_NODE = 3


class ExpandCollapsePattern(UIAPattern):
    """Controls that show/hide child content (menus, combo boxes, tree items)."""

    pattern_id = PatternId.EXPAND_COLLAPSE

    def __init__(
        self,
        element: "UIElement",
        state: ExpandCollapseState = ExpandCollapseState.COLLAPSED,
        on_expand: Optional[Callable[[], None]] = None,
        on_collapse: Optional[Callable[[], None]] = None,
    ):
        super().__init__(element)
        self.state = ExpandCollapseState(state)
        self._on_expand = on_expand
        self._on_collapse = on_collapse

    def expand(self) -> None:
        self._require_enabled()
        if self.state != ExpandCollapseState.EXPANDED:
            self.state = ExpandCollapseState.EXPANDED
            if self._on_expand is not None:
                self._on_expand()

    def collapse(self) -> None:
        self._require_enabled()
        if self.state != ExpandCollapseState.COLLAPSED:
            self.state = ExpandCollapseState.COLLAPSED
            if self._on_collapse is not None:
                self._on_collapse()


class ScrollPattern(UIAPattern):
    """Scrollable containers; positions are percentages in [0, 100].

    A value of -1 mirrors UIA's ``UIA_ScrollPatternNoScroll`` sentinel for the
    axis that cannot scroll.
    """

    pattern_id = PatternId.SCROLL

    NO_SCROLL = -1.0

    def __init__(
        self,
        element: "UIElement",
        horizontal: float = NO_SCROLL,
        vertical: float = 0.0,
        on_scroll: Optional[Callable[[float, float], None]] = None,
    ):
        super().__init__(element)
        self.horizontal_percent = horizontal
        self.vertical_percent = vertical
        self._on_scroll = on_scroll

    @property
    def horizontally_scrollable(self) -> bool:
        return self.horizontal_percent != self.NO_SCROLL

    @property
    def vertically_scrollable(self) -> bool:
        return self.vertical_percent != self.NO_SCROLL

    @staticmethod
    def _clamp(value: float) -> float:
        return max(0.0, min(100.0, float(value)))

    def set_scroll_percent(self, horizontal: Optional[float], vertical: Optional[float]) -> None:
        """Set the scroll position; ``None`` leaves the axis unchanged."""
        self._require_enabled()
        if horizontal is not None:
            if not self.horizontally_scrollable:
                raise PatternNotSupportedError(
                    f"control {self.element.name!r} cannot scroll horizontally"
                )
            self.horizontal_percent = self._clamp(horizontal)
        if vertical is not None:
            if not self.vertically_scrollable:
                raise PatternNotSupportedError(
                    f"control {self.element.name!r} cannot scroll vertically"
                )
            self.vertical_percent = self._clamp(vertical)
        if self._on_scroll is not None:
            self._on_scroll(self.horizontal_percent, self.vertical_percent)

    def scroll_by(self, horizontal_delta: float = 0.0, vertical_delta: float = 0.0) -> None:
        """Relative scroll used by imperative wheel/drag interactions."""
        horizontal = None
        vertical = None
        if self.horizontally_scrollable and horizontal_delta:
            horizontal = self.horizontal_percent + horizontal_delta
        if self.vertically_scrollable and vertical_delta:
            vertical = self.vertical_percent + vertical_delta
        if horizontal is not None or vertical is not None:
            self.set_scroll_percent(horizontal, vertical)


class SelectionPattern(UIAPattern):
    """Containers whose children can be selected (lists, tabs, grids)."""

    pattern_id = PatternId.SELECTION

    def __init__(self, element: "UIElement", can_select_multiple: bool = False):
        super().__init__(element)
        self.can_select_multiple = can_select_multiple

    def get_selection(self) -> List["UIElement"]:
        """Return the currently selected child elements."""
        selected = []
        for child in self.element.iter_descendants():
            item = child.get_pattern(PatternId.SELECTION_ITEM)
            if item is not None and item.is_selected:
                selected.append(child)
        return selected


class SelectionItemPattern(UIAPattern):
    """Selectable items inside a selection container."""

    pattern_id = PatternId.SELECTION_ITEM

    def __init__(
        self,
        element: "UIElement",
        is_selected: bool = False,
        container: Optional["UIElement"] = None,
        on_select: Optional[Callable[[bool], None]] = None,
    ):
        super().__init__(element)
        self.is_selected = is_selected
        self._container = container
        self._on_select = on_select

    @property
    def selection_container(self) -> Optional["UIElement"]:
        if self._container is not None:
            return self._container
        ancestor = self.element.parent
        while ancestor is not None:
            if ancestor.get_pattern(PatternId.SELECTION) is not None:
                return ancestor
            ancestor = ancestor.parent
        return None

    def _container_pattern(self) -> Optional[SelectionPattern]:
        container = self.selection_container
        if container is None:
            return None
        return container.get_pattern(PatternId.SELECTION)

    def select(self) -> None:
        """Select this item, deselecting siblings if single-select."""
        self._require_enabled()
        container = self._container_pattern()
        if container is not None and not container.can_select_multiple:
            for other in container.get_selection():
                other_item = other.get_pattern(PatternId.SELECTION_ITEM)
                if other_item is not None and other is not self.element:
                    other_item._set_selected(False)
        self._set_selected(True)

    def add_to_selection(self) -> None:
        self._require_enabled()
        container = self._container_pattern()
        if container is not None and not container.can_select_multiple:
            raise PatternNotSupportedError(
                f"container {container.element.name!r} does not allow multi-selection"
            )
        self._set_selected(True)

    def remove_from_selection(self) -> None:
        self._require_enabled()
        self._set_selected(False)

    def _set_selected(self, value: bool) -> None:
        if value != self.is_selected:
            self.is_selected = value
            if self._on_select is not None:
                self._on_select(value)


class TextPattern(UIAPattern):
    """Text containers: documents, edit fields, cells.

    The pattern operates on a *text provider*: any object with ``get_text()``,
    ``get_lines()``, ``get_paragraphs()`` and ``select_range(start, end, unit)``.
    Widgets supply the provider; for simple cases the element's ``text``
    property is used.
    """

    pattern_id = PatternId.TEXT

    def __init__(self, element: "UIElement", provider=None):
        super().__init__(element)
        self._provider = provider
        self.selection: Optional[tuple] = None  # (unit, start, end)

    # -- reading ---------------------------------------------------------
    def get_text(self, max_length: int = -1) -> str:
        text = self._provider.get_text() if self._provider is not None else self.element.text
        if max_length >= 0:
            return text[:max_length]
        return text

    def get_lines(self) -> List[str]:
        if self._provider is not None and hasattr(self._provider, "get_lines"):
            return list(self._provider.get_lines())
        return self.get_text().splitlines()

    def get_paragraphs(self) -> List[str]:
        if self._provider is not None and hasattr(self._provider, "get_paragraphs"):
            return list(self._provider.get_paragraphs())
        return [p for p in self.get_text().split("\n\n")]

    # -- selecting -------------------------------------------------------
    def select_lines(self, start_index: int, end_index: Optional[int] = None) -> tuple:
        """Select one line or a contiguous line range (inclusive, 0-based)."""
        self._require_enabled()
        end_index = start_index if end_index is None else end_index
        lines = self.get_lines()
        self._validate_range(start_index, end_index, len(lines), unit="line")
        self.selection = ("line", start_index, end_index)
        if self._provider is not None and hasattr(self._provider, "select_range"):
            self._provider.select_range(start_index, end_index, unit="line")
        return self.selection

    def select_paragraphs(self, start_index: int, end_index: Optional[int] = None) -> tuple:
        """Select one paragraph or a contiguous paragraph range (inclusive)."""
        self._require_enabled()
        end_index = start_index if end_index is None else end_index
        paragraphs = self.get_paragraphs()
        self._validate_range(start_index, end_index, len(paragraphs), unit="paragraph")
        self.selection = ("paragraph", start_index, end_index)
        if self._provider is not None and hasattr(self._provider, "select_range"):
            self._provider.select_range(start_index, end_index, unit="paragraph")
        return self.selection

    @staticmethod
    def _validate_range(start: int, end: int, length: int, unit: str) -> None:
        if start < 0 or end < start or end >= length:
            raise IndexError(
                f"invalid {unit} range [{start}, {end}] for provider with {length} {unit}s"
            )


class ValuePattern(UIAPattern):
    """Controls with a settable string value (edit fields, combo boxes)."""

    pattern_id = PatternId.VALUE

    def __init__(
        self,
        element: "UIElement",
        value: str = "",
        is_read_only: bool = False,
        on_change: Optional[Callable[[str], None]] = None,
    ):
        super().__init__(element)
        self.value = value
        self.is_read_only = is_read_only
        self._on_change = on_change

    def set_value(self, value: str) -> None:
        self._require_enabled()
        if self.is_read_only:
            raise PatternNotSupportedError(
                f"control {self.element.name!r} has a read-only value"
            )
        self.value = str(value)
        if self._on_change is not None:
            self._on_change(self.value)


class RangeValuePattern(UIAPattern):
    """Controls with a numeric value in a range (sliders, spinners)."""

    pattern_id = PatternId.RANGE_VALUE

    def __init__(
        self,
        element: "UIElement",
        value: float = 0.0,
        minimum: float = 0.0,
        maximum: float = 100.0,
        small_change: float = 1.0,
        on_change: Optional[Callable[[float], None]] = None,
    ):
        super().__init__(element)
        if maximum < minimum:
            raise ValueError("maximum must be >= minimum")
        self.minimum = minimum
        self.maximum = maximum
        self.small_change = small_change
        self.value = max(minimum, min(maximum, value))
        self._on_change = on_change

    def set_value(self, value: float) -> None:
        self._require_enabled()
        clamped = max(self.minimum, min(self.maximum, float(value)))
        self.value = clamped
        if self._on_change is not None:
            self._on_change(self.value)


class GridPattern(UIAPattern):
    """Two-dimensional containers of items (spreadsheet grids)."""

    pattern_id = PatternId.GRID

    def __init__(self, element: "UIElement", row_count: int, column_count: int, get_item=None):
        super().__init__(element)
        self.row_count = row_count
        self.column_count = column_count
        self._get_item = get_item

    def get_item(self, row: int, column: int) -> "UIElement":
        if row < 0 or row >= self.row_count or column < 0 or column >= self.column_count:
            raise IndexError(f"grid item ({row}, {column}) out of bounds")
        if self._get_item is None:
            raise PatternNotSupportedError("grid has no item accessor")
        return self._get_item(row, column)


class GridItemPattern(UIAPattern):
    """Items living inside a grid."""

    pattern_id = PatternId.GRID_ITEM

    def __init__(self, element: "UIElement", row: int, column: int,
                 containing_grid: Optional["UIElement"] = None):
        super().__init__(element)
        self.row = row
        self.column = column
        self.containing_grid = containing_grid


class WindowPattern(UIAPattern):
    """Top-level and modal windows."""

    pattern_id = PatternId.WINDOW

    def __init__(
        self,
        element: "UIElement",
        is_modal: bool = False,
        on_close: Optional[Callable[[], None]] = None,
    ):
        super().__init__(element)
        self.is_modal = is_modal
        self.is_open = True
        self._on_close = on_close

    def close(self) -> None:
        if self.is_open:
            self.is_open = False
            if self._on_close is not None:
                self._on_close()


class LegacyAccessiblePattern(UIAPattern):
    """Carries the legacy MSAA description string for a control."""

    pattern_id = PatternId.LEGACY_ACCESSIBLE

    def __init__(self, element: "UIElement", description: str = ""):
        super().__init__(element)
        self.description = description


#: All pattern classes implemented by the substrate, keyed by id.
ALL_PATTERN_CLASSES = {
    cls.pattern_id: cls
    for cls in (
        InvokePattern,
        TogglePattern,
        ExpandCollapsePattern,
        ScrollPattern,
        SelectionPattern,
        SelectionItemPattern,
        TextPattern,
        ValuePattern,
        RangeValuePattern,
        GridPattern,
        GridItemPattern,
        WindowPattern,
        LegacyAccessiblePattern,
    )
}


def supported_pattern_ids(element: "UIElement") -> Sequence[PatternId]:
    """Return the ids of all patterns supported by ``element``."""
    return tuple(element.patterns.keys())
