"""A Windows UI Automation (UIA)-like accessibility substrate.

The real DMI implementation drives Microsoft Office through the Windows UI
Automation framework (via pywinauto).  This package provides an in-process
equivalent exposing the same *abstract surface* that DMI consumes:

* a finite set of control types (:mod:`repro.uia.control_types`),
* a finite set of control patterns (:mod:`repro.uia.patterns`),
* an accessibility tree of elements with properties and bounding rectangles
  (:mod:`repro.uia.element`, :mod:`repro.uia.tree`),
* XPath-like control identifiers (:mod:`repro.uia.identifiers`),
* structure-changed / window-opened event listeners (:mod:`repro.uia.events`).
"""

from repro.uia.control_types import ControlType, KEY_CONTROL_TYPES, is_container_type
from repro.uia.element import BoundingRect, UIElement
from repro.uia.identifiers import ControlIdentifier, synthesize_identifier, parse_identifier
from repro.uia.patterns import (
    ExpandCollapsePattern,
    ExpandCollapseState,
    GridItemPattern,
    GridPattern,
    InvokePattern,
    LegacyAccessiblePattern,
    PatternId,
    RangeValuePattern,
    ScrollPattern,
    SelectionItemPattern,
    SelectionPattern,
    TextPattern,
    TogglePattern,
    ToggleState,
    UIAPattern,
    ValuePattern,
    WindowPattern,
)
from repro.uia.tree import (
    TreeWalker,
    find_all,
    find_first,
    iter_descendants,
    iter_subtree,
    tree_size,
)
from repro.uia.events import EventKind, UIAEvent, EventBus

__all__ = [
    "BoundingRect",
    "ControlIdentifier",
    "ControlType",
    "EventBus",
    "EventKind",
    "ExpandCollapsePattern",
    "ExpandCollapseState",
    "GridItemPattern",
    "GridPattern",
    "InvokePattern",
    "KEY_CONTROL_TYPES",
    "LegacyAccessiblePattern",
    "PatternId",
    "RangeValuePattern",
    "ScrollPattern",
    "SelectionItemPattern",
    "SelectionPattern",
    "TextPattern",
    "TogglePattern",
    "ToggleState",
    "TreeWalker",
    "UIAEvent",
    "UIAPattern",
    "UIElement",
    "ValuePattern",
    "WindowPattern",
    "find_all",
    "find_first",
    "is_container_type",
    "iter_descendants",
    "iter_subtree",
    "parse_identifier",
    "synthesize_identifier",
    "tree_size",
]
