"""repro — reproduction of the DMI (Declarative Model Interface) system.

This package reproduces "From Imperative to Declarative: Towards LLM-friendly
OS Interfaces for Boosted Computer-Use Agents" (EuroSys 2026).

Top-level layout
----------------
``repro.uia``
    A Windows-UI-Automation-like accessibility substrate: control types,
    control patterns, the accessibility tree and element properties.
``repro.gui``
    A simulated desktop runtime: windows, widgets, input (mouse/keyboard),
    hit-testing and visibility.
``repro.apps``
    Simulated Office-like applications (Word, Excel, PowerPoint analogues)
    with real, checkable document/workbook/presentation state.
``repro.ripping``
    GUI ripping: automatic construction of the UI Navigation Graph (UNG).
``repro.topology``
    UNG -> DAG -> forest transformation, compact textual serialisation,
    core-topology extraction and query-on-demand.
``repro.dmi``
    The paper's contribution: the declarative primitives (access, state,
    observation) and the robust executor behind them.
``repro.llm``
    A calibrated stochastic policy simulator standing in for GPT-5-class
    models (see DESIGN.md, substitution table).
``repro.agent``
    A UFO-2-like computer-use-agent framework (HostAgent/AppAgent) and its
    DMI-augmented variant.
``repro.bench``
    An OSWorld-W-style benchmark of 27 single-app tasks, runners, metrics and
    report generators for every table and figure in the paper.
"""

__version__ = "1.0.0"

__all__ = [
    "uia",
    "gui",
    "apps",
    "ripping",
    "topology",
    "dmi",
    "llm",
    "agent",
    "bench",
]
