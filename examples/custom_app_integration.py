"""Scenario: extending DMI to a brand-new application.

The paper (§6, "Generalization to new applications") notes that adopting DMI
for another application only requires building its UI Navigation Graph.
This example writes a small "music player" application with the widget
toolkit, registers a blocklist entry for a control that would leave the app,
rips it, builds the forest, and then drives it declaratively — without the
application exposing any programmatic API.

Run with:  python examples/custom_app_integration.py
"""

from __future__ import annotations

from repro.apps.base import Application
from repro.dmi import DMIConfig, build_dmi_for_app
from repro.gui.ribbon import DialogBuilder, build_gallery_button, build_menu_button
from repro.gui.widgets import Button, Edit, Group, ListBox, ListItemControl, ScrollBarControl
from repro.ripping.blocklist import AccessBlocklist, default_blocklist_for


class MusicPlayerApp(Application):
    """A small media-library application (no API, GUI only)."""

    APP_NAME = "MusicPlayer"

    def __init__(self, desktop=None):
        self.now_playing = None
        self.volume = 50.0
        self.playlist = []
        self.equalizer_preset = "Flat"
        self.library = ["Blue Monday", "Golden Hour", "Midnight City", "Clair de Lune"]
        super().__init__(desktop=desktop)

    def document_title(self) -> str:
        return "Library"

    @property
    def state(self):
        return self

    def build_ui(self) -> None:
        toolbar = Group(name="Playback", automation_id="Player.Playback")
        self.window.add_child(toolbar)
        toolbar.add_child(Button("Play", automation_id="Player.Play",
                                 on_click=lambda: setattr(self, "now_playing",
                                                          self.playlist[0] if self.playlist
                                                          else self.library[0])))
        toolbar.add_child(Button("Stop", automation_id="Player.Stop",
                                 on_click=lambda: setattr(self, "now_playing", None)))
        toolbar.add_child(build_gallery_button(
            "Equalizer", ("Flat", "Rock", "Jazz", "Classical", "Bass Boost"),
            automation_id="Player.Equalizer",
            description="Choose an equalizer preset",
            on_choice=lambda preset: setattr(self, "equalizer_preset", preset)))
        toolbar.add_child(build_menu_button(
            "Library", {
                "Add to Playlist...": self._open_add_dialog,
                "Clear Playlist": lambda: self.playlist.clear(),
            },
            automation_id="Player.Library"))
        toolbar.add_child(Button("Buy Music Online", automation_id="Player.Store",
                                 description="Opens the web store in a browser"))
        volume = ScrollBarControl("Volume", automation_id="Player.Volume",
                                  orientation="horizontal",
                                  on_scroll=lambda p: setattr(self, "volume", p))
        toolbar.add_child(volume)

        songs = ListBox(name="Song List", automation_id="Player.Songs", multi_select=True)
        self.window.add_child(songs)
        for title in self.library:
            songs.add_item(ListItemControl(title,
                                           automation_id=f"Player.Song.{title.replace(' ', '')}"))

    def _open_add_dialog(self) -> None:
        builder = DialogBuilder("Add to Playlist",
                                on_ok=lambda: None)
        dialog = builder.build()
        builder.add_edit(dialog, "Song title",
                         on_commit=lambda title: self.playlist.append(title))
        self.open_dialog(dialog)


def main() -> None:
    print("== Modeling a brand-new application ==")
    # Manual configuration step (paper §4.1): the web-store button navigates
    # away from the application, so it goes on the access blocklist.
    blocklist = default_blocklist_for("MusicPlayer").merged_with(
        AccessBlocklist.from_names({"Buy Music Online"}))

    dmi = build_dmi_for_app(MusicPlayerApp(), DMIConfig(), blocklist=blocklist)
    summary = dmi.artifacts.summary()
    print(f"UNG: {summary['ung_nodes']} controls / {summary['ung_edges']} edges; "
          f"core topology ~{summary['core_tokens']} tokens")
    print("\nSerialized topology (excerpt):")
    for line in dmi.query_engine.initial_prompt_text().splitlines()[:6]:
        print("  " + line[:110])

    print("\n== Driving the new app declaratively ==")
    app = MusicPlayerApp()
    dmi = build_dmi_for_app(app, artifacts=dmi.artifacts, blocklist=blocklist)

    # Access declaration: pick an equalizer preset buried in a gallery.
    jazz = [n for n in dmi.forest.find_by_name("Jazz", leaves_only=True)][0]
    dmi.visit([{"id": jazz.node_id}])
    print(f"equalizer preset -> {app.equalizer_preset}")

    # Access + text input inside a dialog DMI opens on our behalf.
    title_field = [n for n in dmi.forest.find_by_name("Song title", leaves_only=True)][0]
    ok = [n for n in dmi.forest.find_by_name("OK", leaves_only=True)
          if "Add to Playlist" in " > ".join(p.name for p in n.path_from_root())][0]
    dmi.visit([{"id": title_field.node_id, "text": "Clair de Lune"}, {"id": ok.node_id}])
    print(f"playlist -> {app.playlist}")

    # State declarations: select songs, set the volume.
    dmi.select_controls(["Blue Monday", "Midnight City"], mode="add")
    dmi.set_scrollbar_pos("Volume", 80.0, None)
    play = [n for n in dmi.forest.find_by_name("Play", leaves_only=True)][0]
    dmi.visit([{"id": play.node_id}])
    print(f"now playing -> {app.now_playing!r} at volume {app.volume:.0f}%")

    # Structured error feedback: asking for text from a control that exposes
    # none fails loudly with machine-readable detail instead of guessing.
    feedback = dmi.get_texts("Song List")
    print(f"get_texts('Song List') -> {feedback.status.value}: {feedback.message}")

    # The blocklisted control is still reachable as a node, but was never
    # activated during modeling.
    store_nodes = dmi.forest.find_by_name("Buy Music Online")
    print(f"blocklisted control present in topology: {bool(store_nodes)} "
          f"(leaf: {store_nodes[0].is_leaf})")


if __name__ == "__main__":
    main()
