"""Scenario: preparing a sales report in the spreadsheet application.

A realistic multi-step spreadsheet workflow driven entirely through DMI's
declarative primitives — the same interface an LLM agent would call:

* select ranges by typing into the Name Box (access-and-input-text plus the
  auxiliary ENTER shortcut the paper's "Lessons Learned" highlights),
* total a column with AutoSum, bold the header row, format prices as
  currency, add a conditional-formatting rule, sort by region and insert a
  chart — each expressed as target controls, never as navigation sequences,
* read results back with the observation declaration (structured
  ``get_texts``) instead of visual parsing.

Run with:  python examples/spreadsheet_report.py
"""

from __future__ import annotations

from repro.apps import ExcelApp
from repro.dmi import build_dmi_for_app


def leaf(dmi, name, scope=""):
    """Resolve a functional control id by name (and optional path scope)."""
    candidates = dmi.forest.find_by_name(name, leaves_only=True)
    if scope:
        candidates = [n for n in candidates
                      if scope.lower() in " > ".join(p.name for p in n.path_from_root()).lower()]
    if not candidates:
        raise LookupError(f"no functional control named {name!r} (scope {scope!r})")
    return candidates[0].node_id


def select_range(dmi, reference: str) -> None:
    """Select a cell range the way an agent would: Name Box + ENTER."""
    dmi.visit([
        {"id": leaf(dmi, "Name Box"), "text": reference},
        {"shortcut_key": "enter"},
    ])


def main() -> None:
    app = ExcelApp()
    print("== Offline phase ==")
    dmi = build_dmi_for_app(app)
    print(f"modeled {dmi.artifacts.ung.node_count()} controls; "
          f"core topology ~{dmi.core.token_estimate()} tokens\n")

    sheet = app.workbook.active_sheet

    print("== Building the sales report declaratively ==")

    # 1. Total the Units column.
    select_range(dmi, "C2:C9")
    dmi.visit([{"id": leaf(dmi, "Sum", scope="AutoSum")}])
    print(f"1. AutoSum over C2:C9       -> C10 = {sheet.get_value('C10'):.0f}")

    # 2. Bold the header row.
    select_range(dmi, "A1:E1")
    dmi.visit([{"id": leaf(dmi, "Bold", scope="Home")}])
    print(f"2. Header row bold          -> A1 bold = {sheet.cell('A1').format.bold}")

    # 3. Format the Unit Price column as currency.
    select_range(dmi, "D2:D9")
    dmi.visit([{"id": leaf(dmi, "Currency", scope="Number Format")}])
    print(f"3. Prices as currency       -> D2 shows {sheet.cell('D2').display_value()}")

    # 4. Highlight revenues above 50,000 (navigates into the dialog for us).
    select_range(dmi, "E2:E9")
    dmi.visit([
        {"id": leaf(dmi, "Format cells that are", scope="Greater Than"), "text": "50000"},
        {"id": leaf(dmi, "OK", scope="Greater Than")},
    ])
    print(f"4. Conditional formatting   -> E2 fill = {sheet.conditional_fill_for('E2')}, "
          f"E5 fill = {sheet.conditional_fill_for('E5')}")

    # 5. Sort the data rows by region.
    select_range(dmi, "A2:E9")
    dmi.visit([{"id": leaf(dmi, "Sort A to Z", scope="Sort & Filter")}])
    regions = [sheet.get_value(f"A{r}") for r in range(2, 10)]
    print(f"5. Sorted by region         -> {regions}")

    # 6. Insert a chart over the whole table.
    select_range(dmi, "A1:E9")
    dmi.visit([{"id": leaf(dmi, "Clustered Column", scope="Insert Column Chart")}])
    print(f"6. Chart inserted           -> {sheet.charts[0].chart_type} over "
          f"{sheet.charts[0].data_range}")

    # 7. Observation declaration: read the computed total back, structured.
    digest = dmi.passive_digest()
    print("\n== Observation (passive get_texts digest, excerpt) ==")
    for name in ("A1", "E2", "C10"):
        print(f"  {name}: {digest.entries.get(name, dmi.get_texts(name).detail.get('text'))}")

    # 8. Freeze the header row and save.
    dmi.visit([{"id": leaf(dmi, "Freeze Top Row", scope="Freeze Panes")}])
    dmi.visit([{"id": leaf(dmi, "Save", scope="File")}])
    print(f"\nFrozen rows: {sheet.frozen_rows}, workbook saved: {app.workbook.saved}")


if __name__ == "__main__":
    main()
