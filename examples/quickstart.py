"""Quickstart: build DMI for an application and drive it declaratively.

This walks the full pipeline on the simulated PowerPoint application:

1. **Offline phase** — rip the live UI into a UI Navigation Graph, remove
   cycles, externalize merge nodes into shared subtrees, and extract the
   depth-limited core topology.
2. **Online phase** — look at the textual topology an LLM would receive,
   then complete the paper's two example tasks with single declarative
   calls: Task 1 ("make the background blue on all slides") through the
   ``visit`` access declaration, and Task 2 ("show the area close to the
   end") through the ``set_scrollbar_pos`` state declaration.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.apps import PowerPointApp
from repro.dmi import build_dmi_for_app


def main() -> None:
    # ------------------------------------------------------------------
    # Offline phase: model the application once (reusable across machines
    # for the same application build).
    # ------------------------------------------------------------------
    print("== Offline phase: UI navigation modeling ==")
    scratch_app = PowerPointApp()
    dmi = build_dmi_for_app(scratch_app)
    summary = dmi.artifacts.summary()
    print(f"UNG: {summary['ung_nodes']} controls, {summary['ung_edges']} click edges, "
          f"{summary['merge_nodes']} merge nodes")
    print(f"Forest: {summary['forest_nodes']} nodes, "
          f"{summary['shared_subtrees']} shared subtrees")
    print(f"Core topology: {summary['core_nodes']} nodes, ~{summary['core_tokens']} tokens, "
          f"modeled in {summary['modeling_seconds']:.1f}s")

    # The topology the LLM reads (truncated here for display).
    print("\nFirst lines of the serialized core topology:")
    for line in dmi.initial_context().splitlines()[:12]:
        print("  " + line[:110])

    # ------------------------------------------------------------------
    # Online phase: bind the offline model to a *fresh* application
    # instance and complete the paper's example tasks.
    # ------------------------------------------------------------------
    print("\n== Online phase: declarative task completion ==")
    app = PowerPointApp()
    dmi = build_dmi_for_app(app, artifacts=dmi.artifacts)

    # Task 1 (paper Table 1): make the background blue on all slides.
    forest = dmi.forest
    solid_fill = forest.find_by_name("Solid fill", leaves_only=True)[0]
    blue = [n for n in forest.find_by_name("Blue", leaves_only=True)
            if "Fill Color" in " > ".join(p.name for p in n.path_from_root())][0]
    apply_all = [n for n in forest.find_by_name("Apply to All", leaves_only=True)
                 if "Format Background" in " > ".join(p.name for p in n.path_from_root())][0]

    print("\nTask 1: make the background blue on all slides")
    print(f"  declarative call: visit([{{'id': {solid_fill.node_id}}}, "
          f"{{'id': {blue.node_id}}}, {{'id': {apply_all.node_id}}}])")
    result = dmi.visit([
        {"id": solid_fill.node_id},
        {"id": blue.node_id},
        {"id": apply_all.node_id},
    ])
    print(f"  executed {result.executed} commands with "
          f"{result.actions_delivered} low-level actions")
    print(f"  slide backgrounds now: {[s.background.color for s in app.presentation.slides]}")

    # Task 2 (paper Table 1): show the area close to the end.
    print("\nTask 2: show the area close to the end")
    feedback = dmi.set_scrollbar_pos("Vertical Scroll Bar", None, 80.0)
    print(f"  set_scrollbar_pos('Vertical Scroll Bar', 80%) -> {feedback.status.value}, "
          f"structured state: {feedback.detail}")
    print(f"  presentation scrolled to {app.presentation.scroll_percent:.0f}%, "
          f"active slide is now #{app.presentation.active_index + 1}")

    # Observation declaration: structured retrieval instead of pixels.
    print("\nObservation: get_texts on the Notes pane")
    dmi.set_value("Notes", "Draft agenda for the launch review")
    print("  " + dmi.get_texts("Notes").detail.get("text", ""))


if __name__ == "__main__":
    main()
