"""Scenario: GUI-only agent vs GUI+DMI agent on the same task.

Runs the paper's flagship task ("make the background blue on all slides")
through the full agent stack — HostAgent framework overhead, AppAgent
execution, simulated LLM policy with the GPT-5 (medium reasoning) profile —
once with the imperative GUI-only baseline and once with DMI, and prints the
step-by-step comparison: LLM calls, delivered actions, tokens, simulated
time, and whether the task succeeded.

Run with:  python examples/agent_comparison.py [seed]
"""

from __future__ import annotations

import random
import sys

from repro.agent.host_agent import HostAgent
from repro.agent.session import InterfaceSetting, SessionResult
from repro.apps import PowerPointApp
from repro.bench.tasks import task_by_id
from repro.dmi import build_dmi_for_app
from repro.dmi.interface import build_offline_artifacts
from repro.llm.profiles import GPT5_MEDIUM


def describe(result: SessionResult) -> None:
    print(f"  success:        {result.success}")
    print(f"  LLM calls:      {result.steps}  (core {result.core_steps} + 3 framework)")
    print(f"  one-shot:       {result.one_shot}")
    print(f"  GUI actions:    {result.actions}")
    print(f"  prompt tokens:  {result.prompt_tokens}")
    print(f"  simulated time: {result.wall_time_s:.0f}s")
    if result.failure is not None:
        print(f"  failure:        {result.failure.category.value} "
              f"({result.failure.cause.value})")
    for call in result.calls:
        detail = f" [{call.detail}]" if call.detail else ""
        print(f"    - {call.role}/{call.purpose}{detail}: "
              f"{call.prompt_tokens} prompt tokens, {call.latency_s:.0f}s")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    task = task_by_id("ppt-01-blue-background")
    print(f"Task: {task.instruction}\n")

    print("== Offline phase (shared by both agents) ==")
    artifacts = build_offline_artifacts(PowerPointApp())
    print(f"modeled {artifacts.ung.node_count()} controls into a forest of "
          f"{artifacts.forest.node_count()} nodes\n")

    # ------------------------------------------------------------------
    print("== GUI-only baseline (imperative clicks over visible controls) ==")
    gui_app = PowerPointApp()
    host = HostAgent(GPT5_MEDIUM, InterfaceSetting.GUI_ONLY, rng=random.Random(seed))
    gui_result = host.run_task(task, gui_app, artifacts.forest, core=artifacts.core)
    describe(gui_result)
    print(f"  final backgrounds: {[s.background.color for s in gui_app.presentation.slides]}")

    # ------------------------------------------------------------------
    print("\n== GUI+DMI (declarative access/state/observation) ==")
    dmi_app = PowerPointApp()
    dmi = build_dmi_for_app(dmi_app, artifacts=artifacts)
    host = HostAgent(GPT5_MEDIUM, InterfaceSetting.GUI_PLUS_DMI, rng=random.Random(seed))
    dmi_result = host.run_task(task, dmi_app, artifacts.forest, core=artifacts.core, dmi=dmi)
    describe(dmi_result)
    print(f"  final backgrounds: {[s.background.color for s in dmi_app.presentation.slides]}")

    # ------------------------------------------------------------------
    print("\n== Comparison ==")
    if dmi_result.steps and gui_result.steps:
        print(f"  steps:  {gui_result.steps} (GUI) vs {dmi_result.steps} (DMI)")
    print(f"  time:   {gui_result.wall_time_s:.0f}s (GUI) vs {dmi_result.wall_time_s:.0f}s (DMI)")
    print("  note: single runs are stochastic (grounding/navigation errors are sampled);")
    print("        run `pytest benchmarks/test_table3_end_to_end.py --benchmark-only`")
    print("        for the full 27-task, 3-trial comparison.")


if __name__ == "__main__":
    main()
