"""Unit tests for the object-store abstraction (conditional-write contract).

Both backends must agree on the semantics the broker is built on —
create-if-absent and compare-and-swap where exactly one racer wins — and
the filesystem backend must additionally survive its own emulation details:
stale etags from arbitrarily far back, persistence across instances, and
concurrent writers.
"""

import json
import threading
from urllib.parse import quote

import pytest

from repro.bench.shard import ShardError
from repro.bench.store import FileSystemObjectStore, InMemoryObjectStore

STORE_KINDS = ("memory", "fs")


def make_store(kind, tmp_path):
    if kind == "memory":
        return InMemoryObjectStore()
    return FileSystemObjectStore(tmp_path / "store")


@pytest.fixture(params=STORE_KINDS)
def store(request, tmp_path):
    return make_store(request.param, tmp_path)


# ----------------------------------------------------------------------
# the conditional-write contract (both backends)
# ----------------------------------------------------------------------
def test_put_if_absent_creates_exactly_once(store):
    assert store.get("a") is None
    assert store.put_if_absent("a", b"one") is True
    assert store.put_if_absent("a", b"two") is False  # already exists
    data, etag = store.get("a")
    assert data == b"one" and etag


def test_put_if_match_swaps_only_against_the_current_etag(store):
    store.put_if_absent("a", b"one")
    _, etag = store.get("a")
    assert store.put_if_match("a", b"two", etag) is True
    data, new_etag = store.get("a")
    assert data == b"two" and new_etag != etag
    # The superseded etag never wins again.
    assert store.put_if_match("a", b"three", etag) is False
    assert store.get("a")[0] == b"two"


def test_stale_etag_from_arbitrarily_far_back_still_fails(store):
    """Regression for the filesystem emulation: superseded generations must
    keep blocking CAS attempts no matter how many swaps ago they were."""
    store.put_if_absent("a", b"v0")
    etags = [store.get("a")[1]]
    for index in range(1, 5):
        assert store.put_if_match("a", b"v%d" % index, etags[-1]) is True
        etags.append(store.get("a")[1])
    for stale in etags[:-1]:
        assert store.put_if_match("a", b"rogue", stale) is False
    assert store.get("a")[0] == b"v4"


def test_put_if_match_on_missing_key_fails(store):
    store.put_if_absent("a", b"one")
    _, etag = store.get("a")
    store.delete("a")
    assert store.put_if_match("a", b"two", etag) is False
    assert store.get("a") is None


def test_delete_and_recreate(store):
    store.put_if_absent("a", b"one")
    assert store.delete("a") is True
    assert store.get("a") is None
    assert store.delete("a") is False  # already gone
    assert store.put_if_absent("a", b"fresh") is True
    assert store.get("a")[0] == b"fresh"


def test_list_prefix_filters_and_sorts(store):
    for key in ("lease/shard-001", "lease/shard-000", "result/shard-000",
                "plan.json"):
        store.put_if_absent(key, b"x")
    assert store.list_prefix("lease/") == ["lease/shard-000",
                                           "lease/shard-001"]
    assert store.list_prefix("result/") == ["result/shard-000"]
    assert store.list_prefix("") == ["lease/shard-000", "lease/shard-001",
                                     "plan.json", "result/shard-000"]
    store.delete("lease/shard-000")
    assert store.list_prefix("lease/") == ["lease/shard-001"]


def test_keys_with_slashes_and_odd_characters_round_trip(store):
    key = "lease/shard 01:of#02.json"
    store.put_if_absent(key, b"data")
    assert store.get(key)[0] == b"data"
    assert store.list_prefix("lease/") == [key]


def test_empty_and_non_bytes_values_are_rejected(store):
    with pytest.raises(ShardError, match="non-empty"):
        store.put_if_absent("a", b"")
    with pytest.raises(ShardError, match="bytes"):
        store.put_if_absent("a", "text")
    store.put_if_absent("a", b"one")
    with pytest.raises(ShardError, match="non-empty"):
        store.put_if_match("a", b"", store.get("a")[1])


def test_concurrent_cas_increments_lose_no_updates(store):
    """N threads × M read-modify-write increments through the CAS retry
    loop: every update lands exactly once on both backends."""
    store.put_if_absent("counter", b"0")
    threads, increments = 4, 25

    def bump():
        for _ in range(increments):
            while True:
                data, etag = store.get("counter")
                value = int(data.decode("ascii")) + 1
                if store.put_if_match("counter", str(value).encode("ascii"),
                                      etag):
                    break

    workers = [threading.Thread(target=bump) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert int(store.get("counter")[0]) == threads * increments


# ----------------------------------------------------------------------
# filesystem-backend specifics
# ----------------------------------------------------------------------
def test_fs_store_persists_across_instances(tmp_path):
    first = FileSystemObjectStore(tmp_path / "store")
    first.put_if_absent("plan.json", b'{"kind": "x"}')
    _, etag = first.get("plan.json")
    second = FileSystemObjectStore(tmp_path / "store")
    data, same_etag = second.get("plan.json")
    assert data == b'{"kind": "x"}' and same_etag == etag
    # CAS through the second instance invalidates the first's etag.
    assert second.put_if_match("plan.json", b'{"kind": "y"}', etag)
    assert first.put_if_match("plan.json", b"rogue", etag) is False


def test_fs_store_rejects_malformed_etag(tmp_path):
    store = FileSystemObjectStore(tmp_path / "store")
    store.put_if_absent("a", b"one")
    with pytest.raises(ShardError, match="malformed etag"):
        store.put_if_match("a", b"two", "soon")


def test_fs_store_rejects_empty_key(tmp_path):
    store = FileSystemObjectStore(tmp_path / "store")
    with pytest.raises(ShardError, match="non-empty"):
        store.get("")


def test_fs_store_leaves_no_temp_files_behind(tmp_path):
    store = FileSystemObjectStore(tmp_path / "store")
    store.put_if_absent("a", b"one")
    store.put_if_match("a", b"two", store.get("a")[1])
    store.put_if_match("a", b"rogue", "g0000000000")  # failed CAS
    leftovers = [path.name for path in (store.root / quote("a", safe="")).iterdir()
                 if path.name.startswith(".tmp")]
    assert leftovers == []


def test_fs_store_layout_is_flat_and_quoted(tmp_path):
    """The on-disk layout is part of the deployable contract: one quoted
    directory per key, generation files inside."""
    store = FileSystemObjectStore(tmp_path / "store")
    store.put_if_absent("lease/shard-000.json", b'{"state": "queued"}')
    key_dir = store.root / quote("lease/shard-000.json", safe="")
    assert key_dir.is_dir()
    assert [path.name for path in key_dir.iterdir()] == ["g0000000000"]
    payload = json.loads((key_dir / "g0000000000").read_text())
    assert payload == {"state": "queued"}


def test_fs_store_prunes_superseded_generations_on_hot_keys(tmp_path):
    """Regression: a heartbeat-renewed lease key must not grow one file per
    renewal forever — old generations are pruned behind the floor marker."""
    store = FileSystemObjectStore(tmp_path / "store")
    store.put_if_absent("lease", b"v0")
    for index in range(1, 201):
        data, etag = store.get("lease")
        assert store.put_if_match("lease", b"v%d" % index, etag) is True
    assert store.get("lease")[0] == b"v200"
    entries = list((store.root / quote("lease", safe="")).iterdir())
    # Bounded by the keep-window plus the floor marker, not by 200 writes.
    assert len(entries) <= 2 * 16 + 2


def test_fs_store_pruned_ancestry_etags_still_lose(tmp_path):
    """Every historical etag — kept, truncated, or pruned away — must keep
    failing CAS after hundreds of swaps, and must not disturb the value."""
    store = FileSystemObjectStore(tmp_path / "store")
    store.put_if_absent("lease", b"v0")
    etags = [store.get("lease")[1]]
    for index in range(1, 101):
        assert store.put_if_match("lease", b"v%d" % index, etags[-1])
        etags.append(store.get("lease")[1])
    for stale in etags[:-1]:  # includes generations the floor pruned
        assert store.put_if_match("lease", b"rogue", stale) is False
        assert store.get("lease")[0] == b"v100"
    # The current etag still works after all those failed attempts.
    assert store.put_if_match("lease", b"v101", etags[-1]) is True
    assert store.get("lease")[0] == b"v101"


def test_pre_delete_etags_never_match_after_recreation(store):
    """ABA regression: an etag read before a delete must keep losing after
    the key is re-created, on both backends identically."""
    store.put_if_absent("k", b"first")
    _, before_delete = store.get("k")
    assert store.delete("k") is True
    assert store.put_if_absent("k", b"second") is True
    assert store.put_if_match("k", b"rogue", before_delete) is False
    data, fresh = store.get("k")
    assert data == b"second" and fresh != before_delete
    assert store.put_if_match("k", b"third", fresh) is True


def test_delete_vs_cas_race_exactly_one_wins(store):
    """A delete and a CAS holding the current etag race: whichever lands
    first wins and the loser reports failure."""
    store.put_if_absent("k", b"v0")
    _, etag = store.get("k")
    assert store.delete("k") is True  # delete lands first
    assert store.put_if_match("k", b"v1", etag) is False
    assert store.get("k") is None
    # And the other order: CAS lands first, delete still works after.
    store.put_if_absent("k", b"w0")
    _, etag = store.get("k")
    assert store.put_if_match("k", b"w1", etag) is True
    assert store.delete("k") is True
    assert store.delete("k") is False  # idempotent second delete


def test_fs_list_prefix_retries_when_a_cas_lands_mid_check(tmp_path,
                                                           monkeypatch):
    """Regression: a heartbeat CAS truncating the generation list_prefix
    just statted must not make the (live) key vanish from the listing."""
    store = FileSystemObjectStore(tmp_path / "store")
    store.put_if_absent("k", b"v0")
    store.put_if_match("k", b"v1", store.get("k")[1])  # g0 truncated, g1 live
    key_dir = store.root / quote("k", safe="")
    real = store._generations
    calls = {"n": 0}

    def stale_once(directory):
        calls["n"] += 1
        if calls["n"] == 1:  # the pre-CAS view: only the now-empty g0
            return [key_dir / "g0000000000"]
        return real(directory)

    monkeypatch.setattr(store, "_generations", stale_once)
    assert store.list_prefix("") == ["k"]
    assert calls["n"] > 2  # the stale verdict was re-examined, not trusted


def test_fs_list_prefix_survives_a_key_deleted_mid_listing(tmp_path,
                                                           monkeypatch):
    """Regression: a key directory deleted (concurrent pruner, external
    cleanup) between the root scan and the per-key check must drop only
    that key from the listing — not abort every other key's result with a
    ``FileNotFoundError``."""
    store = FileSystemObjectStore(tmp_path / "store")
    store.put_if_absent("doomed", b"v")
    store.put_if_absent("survivor", b"v")
    real = store._key_exists

    def interleaved_delete(key, key_dir):
        if key == "doomed":
            # The race, made deterministic: the whole directory vanishes
            # right after the root scan saw it.
            for path in sorted(key_dir.iterdir(), reverse=True):
                path.unlink()
            key_dir.rmdir()
            raise FileNotFoundError(str(key_dir))  # the stat that lost
        return real(key, key_dir)

    monkeypatch.setattr(store, "_key_exists", interleaved_delete)
    assert store.list_prefix("") == ["survivor"]
    monkeypatch.setattr(store, "_key_exists", real)
    assert store.list_prefix("") == ["survivor"]  # the key stayed gone
