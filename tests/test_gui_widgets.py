"""Tests for the widget toolkit."""

from repro.gui.widgets import (
    Button,
    CheckBox,
    ComboBox,
    DataGrid,
    DataItem,
    Dialog,
    Edit,
    Gallery,
    ListBox,
    ListItemControl,
    Menu,
    MenuItem,
    RadioButton,
    ScrollBarControl,
    Slider,
    Spinner,
    SplitButton,
    TabControl,
    TabItem,
    TreeItemControl,
    Window,
)
from repro.uia.control_types import ControlType
from repro.uia.patterns import PatternId


# ----------------------------------------------------------------------
# buttons / toggles
# ----------------------------------------------------------------------
def test_button_click_invokes_callback():
    clicks = []
    button = Button("Save", on_click=lambda: clicks.append(1))
    button.activate()
    assert clicks == [1]
    assert button.control_type == ControlType.BUTTON


def test_button_callback_can_be_replaced():
    log = []
    button = Button("X")
    button.activate()
    button.set_on_click(lambda: log.append("new"))
    button.activate()
    assert log == ["new"]


def test_split_button_click_expands_children():
    split = SplitButton("Colors")
    child = split.add_child(Button("Blue"))
    assert not child.visible
    split.activate()
    assert child.visible
    split.activate()
    assert not child.visible


def test_checkbox_toggles_and_reports_state():
    states = []
    box = CheckBox("Ruler", on_change=states.append)
    box.activate()
    assert box.checked and states == [True]
    box.set_checked(False)
    assert not box.checked and states == [True, False]


def test_radio_button_selection():
    chosen = []
    radio = RadioButton("Portrait", on_select=lambda sel: chosen.append(sel))
    radio.activate()
    assert radio.selected
    assert chosen == [True]


# ----------------------------------------------------------------------
# tabs
# ----------------------------------------------------------------------
def test_tab_selection_shows_panel_and_hides_siblings():
    window = Window("Main")
    tabs = TabControl()
    window.add_child(tabs)
    panel_a = window.add_child(Window("panel a"))
    panel_b = window.add_child(Window("panel b"))
    tab_a = tabs.add_tab(TabItem("A", panel=panel_a))
    tab_b = tabs.add_tab(TabItem("B", panel=panel_b))
    assert not panel_a.visible and not panel_b.visible
    tab_a.select()
    assert panel_a.visible and not panel_b.visible
    tab_b.select()
    assert panel_b.visible and not panel_a.visible
    assert tabs.selected_tab() is tab_b


def test_tab_on_select_callback():
    selected = []
    tab = TabItem("Design", on_select=lambda: selected.append("design"))
    TabControl().add_tab(tab)
    tab.select()
    assert selected == ["design"]


# ----------------------------------------------------------------------
# menus
# ----------------------------------------------------------------------
def test_menu_item_with_submenu_expands_on_click():
    item = MenuItem("Margins")
    submenu = item.attach_submenu(Menu("Margins menu"))
    leaf_calls = []
    submenu.add_child(MenuItem("Narrow", on_click=lambda: leaf_calls.append("narrow")))
    assert not submenu.visible
    item.activate()
    assert submenu.visible
    submenu.children[0].activate()
    assert leaf_calls == ["narrow"]
    item.activate()
    assert not submenu.visible


# ----------------------------------------------------------------------
# lists / galleries / combos
# ----------------------------------------------------------------------
def test_listbox_selection_modes():
    box = ListBox("items", multi_select=False)
    a = box.add_item(ListItemControl("a"))
    b = box.add_item(ListItemControl("b"))
    a.activate()
    b.activate()
    assert box.selected_items() == [b]


def test_gallery_choice_callback():
    chosen = []
    gallery = Gallery("Theme Colors", choices=("Red", "Blue"), on_choice=chosen.append)
    blue = [c for c in gallery.items() if c.name == "Blue"][0]
    blue.activate()
    assert chosen == ["Blue"]
    assert blue.is_selected


def test_combobox_expand_select_and_value():
    changes = []
    combo = ComboBox("Font", choices=("Arial", "Calibri"), value="Calibri",
                     on_change=changes.append)
    items = combo.find_all(control_type=ControlType.LIST_ITEM)
    assert all(not i.is_on_screen() for i in items)
    combo.activate()          # expand
    items = combo.find_all(control_type=ControlType.LIST_ITEM)
    assert all(i.is_on_screen() for i in items)
    arial = [i for i in items if i.name == "Arial"][0]
    arial.activate()
    assert combo.value == "Arial"
    assert changes == ["Arial"]
    assert combo.choices() == ["Arial", "Calibri"]


# ----------------------------------------------------------------------
# text input
# ----------------------------------------------------------------------
def test_edit_commits_immediately_by_default():
    committed = []
    edit = Edit("Footer text", on_commit=committed.append)
    edit.set_text("Confidential")
    assert committed == ["Confidential"]
    assert edit.value == "Confidential"


def test_edit_with_enter_commit_requires_explicit_commit():
    committed = []
    edit = Edit("Name Box", requires_enter_to_commit=True, on_commit=committed.append)
    edit.set_text("B10")
    assert committed == []
    edit.commit()
    assert committed == ["B10"]


def test_edit_append_text():
    edit = Edit("note", value="a")
    edit.append_text("b")
    assert edit.value == "ab"


# ----------------------------------------------------------------------
# range widgets
# ----------------------------------------------------------------------
def test_slider_and_spinner_values():
    slider = Slider("Transparency", value=10, maximum=100)
    slider.set_value(55)
    assert slider.value == 55
    spinner = Spinner("Duration", value=1.0, minimum=0.0, maximum=10.0, step=0.5)
    spinner.increment()
    assert spinner.value == 1.5
    spinner.decrement()
    spinner.decrement()
    assert spinner.value == 0.5


def test_scrollbar_position_and_callback():
    positions = []
    bar = ScrollBarControl("VScroll", orientation="vertical", on_scroll=positions.append)
    bar.set_position(80)
    assert bar.position == 80
    assert positions == [80]
    horizontal = ScrollBarControl("HScroll", orientation="horizontal")
    horizontal.set_position(25)
    assert horizontal.position == 25


# ----------------------------------------------------------------------
# data grid
# ----------------------------------------------------------------------
def test_data_grid_cells_and_patterns():
    grid = DataGrid("Grid", rows=3, columns=2)
    assert len(grid.all_cells()) == 6
    cell = grid.cell(2, 1)
    assert isinstance(cell, DataItem)
    assert grid.get_pattern(PatternId.GRID).get_item(2, 1) is cell


def test_data_item_value_and_display_value():
    edits = []
    cell = DataItem("B2", row=1, column=1, on_change=edits.append)
    cell.set_value("42")
    assert edits == ["42"]
    cell.set_display_value("43")          # no callback
    assert edits == ["42"]
    assert cell.value == "43"


def test_data_item_selection_display_does_not_fire_callback():
    selections = []
    cell = DataItem("A1", on_select=selections.append)
    cell.set_selected(True)
    assert selections == [True]
    cell.set_selected_display(False)
    assert selections == [True]
    assert not cell.is_selected


# ----------------------------------------------------------------------
# trees / windows / dialogs
# ----------------------------------------------------------------------
def test_tree_item_expansion_hides_and_shows_children():
    parent = TreeItemControl("Folder")
    child = parent.add_child(TreeItemControl("File"))
    assert not child.visible
    parent.get_pattern(PatternId.EXPAND_COLLAPSE).expand()
    assert child.visible


def test_dialog_ok_and_cancel_close_and_call_back():
    outcomes = []
    dialog = Dialog("Settings", on_ok=lambda: outcomes.append("ok"),
                    on_cancel=lambda: outcomes.append("cancel"))
    assert dialog.is_modal
    dialog.ok_button.activate()
    assert outcomes == ["ok"]
    assert not dialog.is_open

    dialog2 = Dialog("Settings2", on_cancel=lambda: outcomes.append("cancel"))
    dialog2.cancel_button.activate()
    assert outcomes == ["ok", "cancel"]


def test_window_close_notifies_user_callback():
    closed = []
    window = Window("Main", on_close=lambda: closed.append(1))
    window.close()
    assert closed == [1]
    assert not window.is_open
