"""Tests for UIA control patterns."""

import pytest

from repro.uia.control_types import ControlType
from repro.uia.element import UIElement
from repro.uia.patterns import (
    ElementDisabledError,
    ExpandCollapsePattern,
    ExpandCollapseState,
    GridItemPattern,
    GridPattern,
    InvokePattern,
    PatternId,
    PatternNotSupportedError,
    RangeValuePattern,
    ScrollPattern,
    SelectionItemPattern,
    SelectionPattern,
    TextPattern,
    TogglePattern,
    ToggleState,
    ValuePattern,
    WindowPattern,
)


def make_element(name="control", control_type=ControlType.BUTTON, enabled=True):
    return UIElement(name=name, control_type=control_type, enabled=enabled)


# ----------------------------------------------------------------------
# Invoke
# ----------------------------------------------------------------------
def test_invoke_runs_callback_and_counts():
    calls = []
    element = make_element()
    pattern = InvokePattern(element, on_invoke=lambda: calls.append(1))
    pattern.invoke()
    pattern.invoke()
    assert calls == [1, 1]
    assert pattern.invoke_count == 2


def test_invoke_on_disabled_element_raises():
    element = make_element(enabled=False)
    pattern = InvokePattern(element)
    with pytest.raises(ElementDisabledError):
        pattern.invoke()


# ----------------------------------------------------------------------
# Toggle
# ----------------------------------------------------------------------
def test_toggle_cycles_between_on_and_off():
    element = make_element(control_type=ControlType.CHECK_BOX)
    pattern = TogglePattern(element)
    assert pattern.toggle() == ToggleState.ON
    assert pattern.toggle() == ToggleState.OFF


def test_toggle_set_state_fires_callback_only_on_change():
    changes = []
    element = make_element(control_type=ControlType.CHECK_BOX)
    pattern = TogglePattern(element, on_change=changes.append)
    pattern.set_state(ToggleState.ON)
    pattern.set_state(ToggleState.ON)
    assert changes == [ToggleState.ON]


# ----------------------------------------------------------------------
# ExpandCollapse
# ----------------------------------------------------------------------
def test_expand_collapse_transitions_and_callbacks():
    events = []
    element = make_element(control_type=ControlType.MENU_ITEM)
    pattern = ExpandCollapsePattern(element, on_expand=lambda: events.append("expand"),
                                    on_collapse=lambda: events.append("collapse"))
    pattern.expand()
    assert pattern.state == ExpandCollapseState.EXPANDED
    pattern.expand()          # no-op
    pattern.collapse()
    assert pattern.state == ExpandCollapseState.COLLAPSED
    assert events == ["expand", "collapse"]


# ----------------------------------------------------------------------
# Scroll
# ----------------------------------------------------------------------
def test_scroll_set_percent_clamps_to_range():
    element = make_element(control_type=ControlType.PANE)
    pattern = ScrollPattern(element, horizontal=0.0, vertical=0.0)
    pattern.set_scroll_percent(150.0, -20.0)
    assert pattern.horizontal_percent == 100.0
    assert pattern.vertical_percent == 0.0


def test_scroll_rejects_unscrollable_axis():
    element = make_element(control_type=ControlType.PANE)
    pattern = ScrollPattern(element, horizontal=ScrollPattern.NO_SCROLL, vertical=0.0)
    with pytest.raises(PatternNotSupportedError):
        pattern.set_scroll_percent(50.0, None)


def test_scroll_by_moves_relative():
    element = make_element(control_type=ControlType.PANE)
    pattern = ScrollPattern(element, vertical=40.0)
    pattern.scroll_by(vertical_delta=25.0)
    assert pattern.vertical_percent == 65.0


# ----------------------------------------------------------------------
# Selection / SelectionItem
# ----------------------------------------------------------------------
def _selection_container(multi=False, items=3):
    container = UIElement(name="list", control_type=ControlType.LIST)
    SelectionPattern_ = SelectionPattern(container, can_select_multiple=multi)
    container.add_pattern(SelectionPattern_)
    children = []
    for i in range(items):
        child = UIElement(name=f"item {i}", control_type=ControlType.LIST_ITEM)
        child.add_pattern(SelectionItemPattern(child))
        container.add_child(child)
        children.append(child)
    return container, children


def test_single_selection_deselects_siblings():
    container, children = _selection_container(multi=False)
    children[0].get_pattern(PatternId.SELECTION_ITEM).select()
    children[1].get_pattern(PatternId.SELECTION_ITEM).select()
    selected = container.get_pattern(PatternId.SELECTION).get_selection()
    assert selected == [children[1]]


def test_multi_selection_accumulates():
    container, children = _selection_container(multi=True)
    children[0].get_pattern(PatternId.SELECTION_ITEM).select()
    children[2].get_pattern(PatternId.SELECTION_ITEM).add_to_selection()
    selected = container.get_pattern(PatternId.SELECTION).get_selection()
    assert set(selected) == {children[0], children[2]}


def test_add_to_selection_rejected_in_single_select_container():
    container, children = _selection_container(multi=False)
    children[0].get_pattern(PatternId.SELECTION_ITEM).select()
    with pytest.raises(PatternNotSupportedError):
        children[1].get_pattern(PatternId.SELECTION_ITEM).add_to_selection()


def test_remove_from_selection():
    container, children = _selection_container(multi=True)
    item = children[1].get_pattern(PatternId.SELECTION_ITEM)
    item.select()
    item.remove_from_selection()
    assert not item.is_selected


# ----------------------------------------------------------------------
# Text
# ----------------------------------------------------------------------
class FakeTextProvider:
    def __init__(self):
        self.lines = ["alpha", "beta", "gamma"]
        self.selected = None

    def get_text(self):
        return "\n".join(self.lines)

    def get_lines(self):
        return self.lines

    def get_paragraphs(self):
        return self.lines

    def select_range(self, start, end, unit):
        self.selected = (unit, start, end)


def test_text_pattern_reads_from_provider():
    element = make_element(control_type=ControlType.DOCUMENT)
    provider = FakeTextProvider()
    pattern = TextPattern(element, provider=provider)
    assert pattern.get_text() == "alpha\nbeta\ngamma"
    assert pattern.get_lines() == ["alpha", "beta", "gamma"]
    assert pattern.get_text(max_length=5) == "alpha"


def test_text_pattern_select_lines_updates_provider():
    element = make_element(control_type=ControlType.DOCUMENT)
    provider = FakeTextProvider()
    pattern = TextPattern(element, provider=provider)
    pattern.select_lines(0, 1)
    assert provider.selected == ("line", 0, 1)
    assert pattern.selection == ("line", 0, 1)


def test_text_pattern_rejects_out_of_range_selection():
    element = make_element(control_type=ControlType.DOCUMENT)
    pattern = TextPattern(element, provider=FakeTextProvider())
    with pytest.raises(IndexError):
        pattern.select_paragraphs(2, 9)


# ----------------------------------------------------------------------
# Value / RangeValue
# ----------------------------------------------------------------------
def test_value_pattern_set_and_callback():
    values = []
    element = make_element(control_type=ControlType.EDIT)
    pattern = ValuePattern(element, on_change=values.append)
    pattern.set_value("hello")
    assert pattern.value == "hello"
    assert values == ["hello"]


def test_value_pattern_read_only_rejects_writes():
    element = make_element(control_type=ControlType.EDIT)
    pattern = ValuePattern(element, value="fixed", is_read_only=True)
    with pytest.raises(PatternNotSupportedError):
        pattern.set_value("other")


def test_range_value_clamps_and_validates():
    element = make_element(control_type=ControlType.SLIDER)
    pattern = RangeValuePattern(element, value=50, minimum=0, maximum=100)
    pattern.set_value(250)
    assert pattern.value == 100
    with pytest.raises(ValueError):
        RangeValuePattern(element, minimum=10, maximum=0)


# ----------------------------------------------------------------------
# Grid / Window
# ----------------------------------------------------------------------
def test_grid_pattern_bounds_check():
    element = make_element(control_type=ControlType.DATA_GRID)
    cells = {}

    def get_item(r, c):
        return cells.setdefault((r, c), make_element(name=f"{r},{c}"))

    pattern = GridPattern(element, row_count=2, column_count=2, get_item=get_item)
    assert pattern.get_item(1, 1).name == "1,1"
    with pytest.raises(IndexError):
        pattern.get_item(2, 0)


def test_grid_item_records_coordinates():
    element = make_element(control_type=ControlType.DATA_ITEM)
    pattern = GridItemPattern(element, row=3, column=4)
    assert (pattern.row, pattern.column) == (3, 4)


def test_window_pattern_close_is_idempotent():
    closes = []
    element = make_element(control_type=ControlType.WINDOW)
    pattern = WindowPattern(element, is_modal=True, on_close=lambda: closes.append(1))
    pattern.close()
    pattern.close()
    assert closes == [1]
    assert not pattern.is_open
