"""Tests for the desktop runtime, layout/hit-testing and input simulation."""

import pytest

from repro.gui.desktop import Desktop
from repro.gui.input import InputError, InputSimulator, Shortcut
from repro.gui.screen import hit_test, neighbours_of
from repro.gui.widgets import Button, Dialog, Edit, Pane, ScrollBarControl, Window
from repro.uia.events import EventKind


def build_desktop():
    desktop = Desktop(width=800, height=600)
    window = Window("Main")
    pane = Pane(name="Body")
    window.add_child(pane)
    button = Button("Go", on_click=lambda: None)
    pane.add_child(button)
    desktop.open_window(window, process_id=desktop.register_process("app"))
    return desktop, window, pane, button


# ----------------------------------------------------------------------
# desktop
# ----------------------------------------------------------------------
def test_open_window_emits_event_and_sets_topmost():
    desktop, window, *_ = build_desktop()
    assert desktop.top_window() is window
    assert desktop.events.events_of_kind(EventKind.WINDOW_OPENED)


def test_modal_dialog_becomes_topmost_and_close_restores():
    desktop, window, *_ = build_desktop()
    dialog = Dialog("Options")
    desktop.open_window(dialog, process_id=window.process_id)
    assert desktop.top_window() is dialog
    assert desktop.modal_windows() == [dialog]
    dialog.close()
    assert desktop.top_window() is window
    assert desktop.events.events_of_kind(EventKind.WINDOW_CLOSED)


def test_window_listener_receives_open_and_close():
    desktop, window, *_ = build_desktop()
    events = []
    remove = desktop.add_window_listener(lambda w, what: events.append((w.name, what)))
    dialog = Dialog("D")
    desktop.open_window(dialog)
    dialog.close()
    remove()
    desktop.open_window(Dialog("E"))
    assert events == [("D", "opened"), ("D", "closed")]


def test_process_registry_and_filtering():
    desktop = Desktop()
    pid_a = desktop.register_process("A")
    pid_b = desktop.register_process("B")
    win_a = Window("A win")
    win_b = Window("B win")
    desktop.open_window(win_a, process_id=pid_a)
    desktop.open_window(win_b, process_id=pid_b)
    assert desktop.process_name(pid_a) == "A"
    assert desktop.open_windows(pid_a) == [win_a]
    assert desktop.top_window(pid_a) is win_a


def test_focus_change_emits_event():
    desktop, window, pane, button = build_desktop()
    desktop.set_focus(button)
    assert desktop.focus is button
    assert desktop.events.events_of_kind(EventKind.FOCUS_CHANGED)


# ----------------------------------------------------------------------
# layout & hit testing
# ----------------------------------------------------------------------
def test_layout_assigns_rects_within_parent():
    desktop, window, pane, button = build_desktop()
    assert window.rect.width == 800
    assert button.rect.width > 0
    assert window.rect.contains(*button.rect.center)


def test_element_at_finds_deepest_element():
    desktop, window, pane, button = build_desktop()
    x, y = button.rect.center
    assert desktop.element_at(x, y) is button
    assert desktop.element_at(-5, -5) is None


def test_hit_test_skips_invisible():
    desktop, window, pane, button = build_desktop()
    button.visible = False
    desktop.relayout()
    x, y = pane.rect.center
    assert hit_test(window, x, y) in (pane, window)


def test_neighbours_of_finds_nearby_leaves():
    desktop, window, pane, button = build_desktop()
    second = Button("Other")
    pane.add_child(second)
    desktop.relayout()
    assert second in neighbours_of(button, radius=1000.0)


def test_dialogs_are_laid_out_smaller_and_centred():
    desktop, window, *_ = build_desktop()
    dialog = Dialog("Options")
    desktop.open_window(dialog)
    assert dialog.rect.width < window.rect.width
    assert dialog.rect.left > 0


# ----------------------------------------------------------------------
# input
# ----------------------------------------------------------------------
def test_click_invokes_and_records():
    desktop, window, pane, button = build_desktop()
    clicked = []
    button.set_on_click(lambda: clicked.append(1))
    sim = InputSimulator(desktop)
    sim.click(button)
    assert clicked == [1]
    assert sim.action_count == 1
    assert desktop.focus is button


def test_click_disabled_raises():
    desktop, window, pane, button = build_desktop()
    button.is_enabled = False
    with pytest.raises(InputError):
        InputSimulator(desktop).click(button)


def test_click_on_coordinates_hits_target():
    desktop, window, pane, button = build_desktop()
    clicked = []
    button.set_on_click(lambda: clicked.append(1))
    sim = InputSimulator(desktop)
    hit = sim.click_on_coordinates(*button.rect.center)
    assert hit is button
    assert clicked == [1]
    assert sim.click_on_coordinates(-10, -10) is None


def test_type_text_into_edit_and_plain_element():
    desktop, window, pane, _ = build_desktop()
    committed = []
    edit = Edit("Name", on_commit=committed.append)
    pane.add_child(edit)
    desktop.relayout()
    sim = InputSimulator(desktop)
    sim.type_text(edit, "hello")
    assert committed == ["hello"]
    label = Button("NotText")
    pane.add_child(label)
    with pytest.raises(InputError):
        sim.type_text(label, "x")


def test_keyboard_enter_commits_focused_edit():
    desktop, window, pane, _ = build_desktop()
    committed = []
    edit = Edit("Name Box", requires_enter_to_commit=True, on_commit=committed.append)
    pane.add_child(edit)
    sim = InputSimulator(desktop)
    sim.type_text(edit, "B10")
    assert committed == []
    sim.keyboard_input("enter")
    assert committed == ["B10"]


def test_keyboard_escape_closes_modal_dialog():
    desktop, window, *_ = build_desktop()
    dialog = Dialog("Options")
    desktop.open_window(dialog, process_id=window.process_id)
    sim = InputSimulator(desktop)
    sim.keyboard_input("escape")
    assert not dialog.is_open


def test_shortcut_parsing_normalises():
    shortcut = Shortcut.parse("Ctrl + S")
    assert shortcut.keys == ("ctrl", "s")
    assert str(shortcut) == "ctrl+s"
    with pytest.raises(ValueError):
        Shortcut.parse("  ")


def test_wheel_scrolls_nearest_scrollable_ancestor():
    desktop, window, pane, button = build_desktop()
    bar = ScrollBarControl("VScroll", orientation="vertical")
    pane.add_child(bar)
    desktop.relayout()
    sim = InputSimulator(desktop)
    sim.wheel_mouse_input(bar, wheel_dist=-4)     # scroll down 4 notches
    assert bar.position == 20.0


def test_drag_on_scrollbar_moves_thumb():
    desktop, window, pane, button = build_desktop()
    bar = ScrollBarControl("VScroll", orientation="vertical")
    pane.add_child(bar)
    desktop.relayout()
    sim = InputSimulator(desktop)
    x, y = bar.rect.center
    sim.drag_on_coordinates(x, bar.rect.top, x, bar.rect.bottom)
    assert bar.position > 50.0
