"""Tests for declarative / imperative plan generation against real forests."""

import dataclasses
import random

import pytest

from repro.bench.tasks import task_by_id
from repro.llm.planner import SemanticPlanner
from repro.llm.profiles import GPT5_MEDIUM, GPT5_MINI
from repro.spec import Intent, IntentKind, TaskSpec


@pytest.fixture
def perfect_planner():
    profile = dataclasses.replace(GPT5_MEDIUM, semantic_error_rate=0.0,
                                  instruction_following_error=0.0)
    return SemanticPlanner(profile, random.Random(0))


# ----------------------------------------------------------------------
# leaf resolution
# ----------------------------------------------------------------------
def test_resolve_leaf_prefers_scope_match(ppt_artifacts, perfect_planner):
    forest = ppt_artifacts.forest
    fill_blue = perfect_planner.resolve_leaf(forest, "Blue", "Fill Color")
    font_blue = perfect_planner.resolve_leaf(forest, "Blue", "Font Color")
    assert fill_blue.node.node_id != font_blue.node.node_id
    path = " > ".join(n.name for n in fill_blue.node.path_from_root())
    assert "Fill Color" in path


def test_resolve_leaf_prefers_editable_types_for_text_input(excel_artifacts, perfect_planner):
    forest = excel_artifacts.forest
    resolution = perfect_planner.resolve_leaf(forest, "Formula Bar",
                                              prefer_types=("Edit",))
    assert resolution.node.control_type.value == "Edit"


def test_resolve_leaf_unknown_name(ppt_artifacts, perfect_planner):
    assert not perfect_planner.resolve_leaf(ppt_artifacts.forest, "Quantum Flux").resolved


# ----------------------------------------------------------------------
# declarative plans
# ----------------------------------------------------------------------
def test_declarative_plan_bundles_accesses_into_one_visit(ppt_artifacts, perfect_planner):
    task = task_by_id("ppt-01-blue-background")
    plan = perfect_planner.plan_declarative(task, ppt_artifacts.forest, ppt_artifacts.core)
    assert [c.kind for c in plan.calls] == ["visit"]
    commands = plan.calls[0].payload["commands"]
    assert len(commands) == 3
    assert all("id" in c for c in commands)
    assert plan.corruption is None


def test_declarative_plan_uses_state_declaration_for_scroll(ppt_artifacts, perfect_planner):
    task = task_by_id("ppt-02-scroll-to-end")
    plan = perfect_planner.plan_declarative(task, ppt_artifacts.forest, ppt_artifacts.core)
    assert plan.calls[0].kind == "set_scrollbar_pos"
    assert plan.calls[0].payload["percent"] == 80.0


def test_declarative_plan_inserts_further_query_for_pruned_targets(word_artifacts,
                                                                   perfect_planner):
    task = task_by_id("word-04-font-arial")
    plan = perfect_planner.plan_declarative(task, word_artifacts.forest, word_artifacts.core)
    kinds = [c.kind for c in plan.calls]
    assert "further_query" in kinds
    assert kinds.index("further_query") < kinds.index("visit")


def test_declarative_plan_falls_back_to_gui_for_non_leaf_targets(ppt_artifacts,
                                                                 perfect_planner):
    task = task_by_id("ppt-05-insert-text-box")
    plan = perfect_planner.plan_declarative(task, ppt_artifacts.forest, ppt_artifacts.core)
    assert any(c.kind == "gui_fallback" for c in plan.calls)


def test_declarative_plan_mixes_shortcut_into_visit(excel_artifacts, perfect_planner):
    task = task_by_id("excel-01-enter-value")
    plan = perfect_planner.plan_declarative(task, excel_artifacts.forest, excel_artifacts.core)
    visit = [c for c in plan.calls if c.kind == "visit"][0]
    kinds = [("shortcut_key" in c) for c in visit.payload["commands"]]
    assert any(kinds)


def test_instruction_following_noise_adds_navigation_nodes(ppt_artifacts):
    profile = dataclasses.replace(GPT5_MEDIUM, semantic_error_rate=0.0,
                                  instruction_following_error=1.0)
    planner = SemanticPlanner(profile, random.Random(1))
    task = task_by_id("ppt-01-blue-background")
    plan = planner.plan_declarative(task, ppt_artifacts.forest, ppt_artifacts.core)
    commands = plan.calls[-1].payload["commands"]
    ids = [c["id"] for c in commands if "id" in c]
    non_leaf = [i for i in ids if not ppt_artifacts.forest.node(i).is_leaf]
    assert non_leaf, "the disobedient planner should emit at least one navigation node"


# ----------------------------------------------------------------------
# imperative plans
# ----------------------------------------------------------------------
def test_imperative_plan_expands_navigation_paths(ppt_artifacts, perfect_planner):
    task = task_by_id("ppt-01-blue-background")
    plan = perfect_planner.plan_imperative(task, ppt_artifacts.forest)
    clicks = [s for s in plan.steps if s.kind == "click"]
    names = [s.target for s in clicks]
    assert "Design" in names and "Format Background" in names and "Apply to All" in names
    # Intents sharing the Format Background dialog do not re-open it.
    assert names.count("Design") == 1


def test_imperative_plan_contains_composite_steps(ppt_artifacts, perfect_planner):
    task = task_by_id("ppt-02-scroll-to-end")
    plan = perfect_planner.plan_imperative(task, ppt_artifacts.forest)
    assert [s.kind for s in plan.steps] == ["drag_scroll"]


def test_imperative_plan_for_structure_unaware_model_adds_exploration(word_artifacts):
    profile = dataclasses.replace(GPT5_MINI, semantic_error_rate=0.0)
    planner = SemanticPlanner(profile, random.Random(7))
    task = task_by_id("word-02-landscape")
    plan = planner.plan_imperative(task, word_artifacts.forest, knows_structure=False)
    assert any(s.exploratory for s in plan.steps) or len(plan.steps) >= 2
    informed = planner.plan_imperative(task, word_artifacts.forest, knows_structure=True)
    assert not any(s.exploratory for s in informed.steps)


def test_imperative_plan_handles_observation_and_selection(excel_artifacts, perfect_planner):
    task = task_by_id("excel-09-bold-top-product")
    plan = perfect_planner.plan_imperative(task, excel_artifacts.forest)
    kinds = [s.kind for s in plan.steps]
    assert "read" in kinds and "click" in kinds


def test_imperative_plan_word_selection_tasks_use_select_text(word_artifacts, perfect_planner):
    task = task_by_id("word-01-italic-revenue")
    plan = perfect_planner.plan_imperative(task, word_artifacts.forest)
    assert plan.steps[0].kind == "select_text"
    assert plan.steps[0].select_range == (2, 2)
