"""Shared fixtures.

Expensive artefacts (offline navigation models) are built once per test
session and shared; live applications are rebuilt per test because tests
mutate them.
"""

from __future__ import annotations

import random

import pytest

from repro.apps import ExcelApp, PowerPointApp, WordApp
from repro.apps.base import Application
from repro.dmi.interface import DMI, build_offline_artifacts
from repro.gui.ribbon import DialogBuilder, build_color_dropdown, build_menu_button
from repro.gui.widgets import Button, Edit, Group, ListBox, ListItemControl, ScrollBarControl


class MiniApp(Application):
    """A small synthetic application used by ripper/topology/DMI unit tests.

    Structure: two "tabs" implemented as plain buttons revealing groups, a
    colour drop-down reachable from two different parents (merge node with
    path-dependent semantics), a dialog with OK/Cancel, an edit committed
    with ENTER, and a scrollbar — enough surface to exercise every DMI code
    path quickly.
    """

    APP_NAME = "MiniApp"

    def __init__(self, desktop=None):
        self.state_log = []
        self.font_color = "Black"
        self.page_color = "White"
        self.saved_name = ""
        self.scroll_position = 0.0
        super().__init__(desktop=desktop)

    def document_title(self) -> str:
        return "MiniDoc"

    @property
    def state(self):
        return self

    def build_ui(self) -> None:
        window = self.window
        home = Group(name="Home Group", automation_id="Mini.Home")
        window.add_child(home)

        home.add_child(build_color_dropdown(
            "Font Color", automation_id="Mini.FontColor",
            on_choice=lambda c: setattr(self, "font_color", c)))
        home.add_child(build_color_dropdown(
            "Page Color", automation_id="Mini.PageColor",
            on_choice=lambda c: setattr(self, "page_color", c)))
        home.add_child(Button("Bold", automation_id="Mini.Bold",
                              on_click=lambda: self.state_log.append("bold")))
        home.add_child(Button("Open Settings", automation_id="Mini.OpenSettings",
                              description="Open the settings dialog",
                              on_click=self._open_settings))
        name_edit = Edit("Name Field", automation_id="Mini.NameField",
                         requires_enter_to_commit=True,
                         on_commit=lambda v: setattr(self, "saved_name", v))
        home.add_child(name_edit)
        home.add_child(ScrollBarControl("Mini Scroll", automation_id="Mini.Scroll",
                                        orientation="vertical",
                                        on_scroll=lambda p: setattr(self, "scroll_position", p)))
        items = ListBox(name="Item List", automation_id="Mini.Items", multi_select=True)
        for label in ("Item A", "Item B", "Item C"):
            items.add_item(ListItemControl(label, automation_id=f"Mini.{label.replace(' ', '')}"))
        home.add_child(items)

    def _open_settings(self) -> None:
        builder = DialogBuilder("Settings")
        dialog = builder.build()
        builder.add_checkbox(dialog, "Enable feature",
                             on_change=lambda v: self.state_log.append(("feature", v)))
        builder.add_edit(dialog, "Setting value",
                         on_commit=lambda v: self.state_log.append(("value", v)))
        dialog.add_child(build_menu_button(
            "Advanced", {"Reset": lambda: self.state_log.append("reset")},
            automation_id="Settings.Advanced"))
        self.open_dialog(dialog)


@pytest.fixture
def mini_app() -> MiniApp:
    return MiniApp()


@pytest.fixture
def word_app() -> WordApp:
    return WordApp()


@pytest.fixture
def excel_app() -> ExcelApp:
    return ExcelApp()


@pytest.fixture
def ppt_app() -> PowerPointApp:
    return PowerPointApp()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


# ----------------------------------------------------------------------
# session-scoped offline artefacts (expensive; built once)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def mini_artifacts():
    return build_offline_artifacts(MiniApp())


@pytest.fixture(scope="session")
def word_artifacts():
    return build_offline_artifacts(WordApp())


@pytest.fixture(scope="session")
def excel_artifacts():
    return build_offline_artifacts(ExcelApp())


@pytest.fixture(scope="session")
def ppt_artifacts():
    return build_offline_artifacts(PowerPointApp())


@pytest.fixture
def mini_dmi(mini_artifacts) -> DMI:
    return DMI(MiniApp(), mini_artifacts)


@pytest.fixture
def ppt_dmi(ppt_artifacts) -> DMI:
    return DMI(PowerPointApp(), ppt_artifacts)


@pytest.fixture
def word_dmi(word_artifacts) -> DMI:
    return DMI(WordApp(), word_artifacts)


@pytest.fixture
def excel_dmi(excel_artifacts) -> DMI:
    return DMI(ExcelApp(), excel_artifacts)
