"""Tests for the LLM substrate: tokens, profiles, grounding, planner."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.llm.grounding import GroundingModel
from repro.llm.planner import SemanticPlanner, _common_prefix_length, _corrupt_text
from repro.llm.profiles import (
    GPT5_MEDIUM,
    GPT5_MINI,
    GPT5_MINIMAL,
    all_profiles,
    profile_by_name,
)
from repro.llm.tokens import estimate_tokens, tokens_per_item
from repro.spec import FailureCause, Intent, IntentKind, TaskSpec
from repro.uia.control_types import ControlType
from repro.uia.element import UIElement


# ----------------------------------------------------------------------
# tokens
# ----------------------------------------------------------------------
def test_estimate_tokens_empty_and_scaling():
    assert estimate_tokens("") == 0
    short = estimate_tokens("Bold")
    long = estimate_tokens("Bold " * 100)
    assert short >= 1
    assert long > short * 50


def test_estimate_tokens_counts_punctuation_heavy_text():
    structured = estimate_tokens("name(type)(desc)_12[child(type)_13]")
    assert structured >= 8


def test_tokens_per_item():
    assert tokens_per_item([]) == 0.0
    assert tokens_per_item(["hello world", "hello world"]) > 0


@given(st.text(max_size=400))
def test_estimate_tokens_is_nonnegative_and_bounded(text):
    tokens = estimate_tokens(text)
    assert tokens >= 0
    assert tokens <= max(1, len(text))


# ----------------------------------------------------------------------
# profiles
# ----------------------------------------------------------------------
def test_profile_lookup_and_registry():
    assert profile_by_name("gpt-5-medium") is GPT5_MEDIUM
    assert profile_by_name("gpt-5-mini-medium") is GPT5_MINI
    with pytest.raises(KeyError):
        profile_by_name("gpt-6")
    assert len(all_profiles()) == 3


def test_profiles_order_by_capability():
    # The weaker configurations have strictly higher mechanism error rates.
    assert GPT5_MEDIUM.grounding_error_rate < GPT5_MINIMAL.grounding_error_rate \
        < GPT5_MINI.grounding_error_rate
    assert GPT5_MEDIUM.semantic_error_rate < GPT5_MINIMAL.semantic_error_rate
    assert GPT5_MINI.knows_app_structure is False
    assert GPT5_MEDIUM.knows_app_structure is True


def test_effective_semantic_error_scales_with_difficulty_and_attention():
    base = GPT5_MEDIUM.effective_semantic_error(1.0, split_attention=False)
    harder = GPT5_MEDIUM.effective_semantic_error(1.5, split_attention=False)
    split = GPT5_MEDIUM.effective_semantic_error(1.0, split_attention=True)
    assert harder > base and split > base
    assert GPT5_MEDIUM.effective_semantic_error(100.0, True) <= 0.95


def test_with_knowledge_returns_modified_copy():
    updated = GPT5_MINI.with_knowledge(True)
    assert updated.knows_app_structure and not GPT5_MINI.knows_app_structure
    assert updated.grounding_error_rate == GPT5_MINI.grounding_error_rate


# ----------------------------------------------------------------------
# grounding
# ----------------------------------------------------------------------
def visible_controls():
    root = UIElement(name="win", control_type=ControlType.WINDOW)
    names = ["Bold", "Italic", "Underline", "Font Color", "Fill Color"]
    elements = [root.add_child(UIElement(name=n, control_type=ControlType.BUTTON))
                for n in names]
    return root, elements


def test_grounding_resolves_correctly_with_zero_error_rate():
    import dataclasses
    profile = dataclasses.replace(GPT5_MEDIUM, grounding_error_rate=0.0)
    model = GroundingModel(profile, random.Random(0))
    _, elements = visible_controls()
    for element in elements:
        assert model.locate(element.name, elements) is element
    assert model.errors_injected == 0


def test_grounding_injects_errors_at_configured_rate():
    import dataclasses
    profile = dataclasses.replace(GPT5_MEDIUM, grounding_error_rate=1.0)
    model = GroundingModel(profile, random.Random(0))
    _, elements = visible_controls()
    wrong = model.locate("Bold", elements)
    assert wrong is not None and wrong.name != "Bold"
    assert model.errors_injected == 1


def test_grounding_scope_hint_disambiguates_same_names():
    root = UIElement(name="win", control_type=ControlType.WINDOW)
    font = root.add_child(UIElement(name="Font Color", control_type=ControlType.SPLIT_BUTTON))
    page = root.add_child(UIElement(name="Page Color", control_type=ControlType.SPLIT_BUTTON))
    blue_font = font.add_child(UIElement(name="Blue", control_type=ControlType.LIST_ITEM))
    blue_page = page.add_child(UIElement(name="Blue", control_type=ControlType.LIST_ITEM))
    import dataclasses
    profile = dataclasses.replace(GPT5_MEDIUM, grounding_error_rate=0.0)
    model = GroundingModel(profile, random.Random(0))
    visible = list(root.iter_subtree())
    assert model.locate("Blue", visible, scope_hint="Page Color") is blue_page
    assert model.locate("Blue", visible, scope_hint="Font Color") is blue_font


def test_grounding_returns_none_for_unknown_controls():
    model = GroundingModel(GPT5_MEDIUM, random.Random(0))
    _, elements = visible_controls()
    assert model.locate("Nonexistent Widget", elements) is None


def test_misreads_content_rate():
    import dataclasses
    always = GroundingModel(dataclasses.replace(GPT5_MEDIUM, visual_parse_error_rate=1.0),
                            random.Random(0))
    never = GroundingModel(dataclasses.replace(GPT5_MEDIUM, visual_parse_error_rate=0.0),
                           random.Random(0))
    assert always.misreads_content() and not never.misreads_content()


# ----------------------------------------------------------------------
# planner helpers
# ----------------------------------------------------------------------
def test_common_prefix_length():
    assert _common_prefix_length(["a", "b", "c"], ["a", "b", "d"]) == 2
    assert _common_prefix_length([], ["a"]) == 0
    assert _common_prefix_length(["a"], ["a"]) == 1


def test_corrupt_text_shifts_cell_references():
    rng = random.Random(0)
    corrupted = _corrupt_text("B10", rng)
    assert corrupted != "B10" and corrupted[0] == "B"


def test_corrupt_text_scales_numbers_and_mangles_words():
    rng = random.Random(0)
    assert float(_corrupt_text("500", rng)) in (50.0, 5000.0)
    assert _corrupt_text("hello world again", rng) != "hello world again"
    assert _corrupt_text("word", rng) != "word"


# ----------------------------------------------------------------------
# planner: corruption behaviour
# ----------------------------------------------------------------------
def demo_task(**overrides):
    defaults = dict(
        task_id="demo", app="powerpoint", instruction="do things",
        intents=(
            Intent(IntentKind.ACCESS, target="Blue", scope_hint="Fill Color",
                   distractors=("Dark Blue",)),
            Intent(IntentKind.SET_SCROLLBAR, target="Vertical Scroll Bar", value=80.0),
        ),
        checker=lambda app: True,
    )
    defaults.update(overrides)
    return TaskSpec(**defaults)


def test_corrupt_intents_never_fires_with_zero_rate():
    import dataclasses
    profile = dataclasses.replace(GPT5_MEDIUM, semantic_error_rate=0.0)
    planner = SemanticPlanner(profile, random.Random(0))
    intents, cause, index = planner.corrupt_intents(demo_task(), split_attention=False)
    assert cause is None and index == -1
    assert list(intents) == list(demo_task().intents)


def test_corrupt_intents_always_fires_with_certain_rate_and_uses_task_cause():
    import dataclasses
    profile = dataclasses.replace(GPT5_MEDIUM, semantic_error_rate=1.0)
    planner = SemanticPlanner(profile, random.Random(3))
    task = demo_task(policy_failure_cause=FailureCause.CONTROL_SEMANTICS)
    intents, cause, index = planner.corrupt_intents(task, split_attention=False)
    assert cause == FailureCause.CONTROL_SEMANTICS
    assert intents[index] != task.intents[index]


def test_ambiguous_tasks_report_ambiguity_as_cause():
    import dataclasses
    profile = dataclasses.replace(GPT5_MEDIUM, semantic_error_rate=1.0)
    planner = SemanticPlanner(profile, random.Random(3))
    _, cause, _ = planner.corrupt_intents(demo_task(ambiguous=True), split_attention=False)
    assert cause == FailureCause.AMBIGUOUS_TASK


def test_task_spec_validation():
    with pytest.raises(ValueError):
        demo_task(app="notepad")
    with pytest.raises(ValueError):
        demo_task(intents=())
    assert demo_task().intent_count() == 2


def test_intent_describe_is_human_readable():
    intent = Intent(IntentKind.ACCESS_INPUT, target="Name Box", text="B10")
    assert "Name Box" in intent.describe() and "B10" in intent.describe()
    assert "80" in Intent(IntentKind.SET_SCROLLBAR, target="x", value=80.0).describe()
