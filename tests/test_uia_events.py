"""Tests for the accessibility event bus."""

from repro.uia.element import UIElement
from repro.uia.events import EventBus, EventKind, UIAEvent


def test_subscribe_specific_kind():
    bus = EventBus()
    received = []
    bus.subscribe(received.append, EventKind.WINDOW_OPENED)
    bus.emit_kind(EventKind.WINDOW_OPENED)
    bus.emit_kind(EventKind.WINDOW_CLOSED)
    assert len(received) == 1
    assert received[0].kind == EventKind.WINDOW_OPENED


def test_subscribe_all_kinds():
    bus = EventBus()
    received = []
    bus.subscribe(received.append, None)
    bus.emit_kind(EventKind.INVOKED)
    bus.emit_kind(EventKind.VALUE_CHANGED)
    assert [e.kind for e in received] == [EventKind.INVOKED, EventKind.VALUE_CHANGED]


def test_unsubscribe_stops_delivery():
    bus = EventBus()
    received = []
    unsubscribe = bus.subscribe(received.append, EventKind.INVOKED)
    bus.emit_kind(EventKind.INVOKED)
    unsubscribe()
    bus.emit_kind(EventKind.INVOKED)
    assert len(received) == 1


def test_history_and_filtering():
    bus = EventBus()
    source = UIElement(name="button")
    bus.emit_kind(EventKind.INVOKED, source=source, extra=1)
    bus.emit_kind(EventKind.FOCUS_CHANGED, source=source)
    invoked = bus.events_of_kind(EventKind.INVOKED)
    assert len(invoked) == 1
    assert invoked[0].source is source
    assert invoked[0].detail == {"extra": 1}
    bus.clear_history()
    assert bus.history == []


def test_history_limit_is_enforced():
    bus = EventBus(history_limit=5)
    for _ in range(12):
        bus.emit_kind(EventKind.INVOKED)
    assert len(bus.history) == 5


def test_emit_accepts_prebuilt_event():
    bus = EventBus()
    event = UIAEvent(kind=EventKind.SCROLL_CHANGED)
    bus.emit(event)
    assert bus.history[-1] is event
