"""Tests for the seeded synthetic app/task generator (PR 9 tentpole).

The contract under test: *the spec token is the whole identity*.  Same
seed/knobs ⇒ byte-identical topology digest, task suite and trial results
across processes; different seeds ⇒ different topologies.  Everything the
grid machinery needs — app factory, task lookup, checkers — must be
regenerable from the ``synthetic:<token>`` / ``syn:<token>:NNNN`` names
alone.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.apps import app_factory
from repro.apps.synthetic import (
    SyntheticApp,
    SyntheticCheck,
    SyntheticSpec,
    _generate_tasks,
    synthetic_suite,
    synthetic_task,
    topology_digest,
    topology_for,
)
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    TABLE3_SETTINGS,
    expand_trial_specs,
)
from repro.bench.shard import plan_shards
from repro.bench.tasks import all_tasks, task_by_id
from repro.ripping.contexts import context_plan_for
from repro.ripping.ripper import GuiRipper

#: Small enough to rip in milliseconds, rich enough to hit every family.
SMALL = "s3-t2-g1-c2-y3-m2-d2-cy1-x1-n8"

_SRC = str(Path(repro.__file__).resolve().parents[1])


def _in_subprocess(code: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-c", code], env=env, check=True,
                          capture_output=True, text=True).stdout


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
def test_token_round_trips_and_key_value_form_agrees():
    spec = SyntheticSpec.parse(SMALL)
    assert spec.token() == SMALL
    assert SyntheticSpec.parse(spec.token()) == spec
    friendly = SyntheticSpec.parse(
        "seed=3,tabs=2,groups=1,controls=2,gallery=3,menu=2,dialogs=2,"
        "cycle=1,contexts=1,tasks=8")
    assert friendly == spec
    # The app-name prefix is accepted, so app names parse directly.
    assert SyntheticSpec.parse(spec.app_name) == spec
    # Unspecified key=value fields fall back to defaults.
    assert SyntheticSpec.parse("seed=9").tabs == SyntheticSpec().tabs


@pytest.mark.parametrize("bad", [
    "s1-t2", "nonsense", "seed=x", "bogus=3", "seed=1,seed=2",
    "seed=-1", "tabs=0,seed=1", "tasks=0,seed=1",
])
def test_malformed_specs_are_rejected(bad):
    with pytest.raises(ValueError, match="synthetic spec|cannot parse"):
        SyntheticSpec.parse(bad)


# ----------------------------------------------------------------------
# determinism: the seeding contract
# ----------------------------------------------------------------------
def test_same_seed_same_digest_across_two_separate_processes():
    probe = (
        "import json\n"
        "from repro.apps.synthetic import SyntheticSpec, synthetic_suite, "
        "topology_digest\n"
        f"spec = SyntheticSpec.parse({SMALL!r})\n"
        "suite = synthetic_suite(spec)\n"
        "print(json.dumps({'digest': topology_digest(spec),"
        " 'tasks': [(t.task_id, t.instruction, t.checker.kind,"
        " t.checker.key, t.checker.expected) for t in suite]}))\n")
    first = json.loads(_in_subprocess(probe))
    second = json.loads(_in_subprocess(probe))
    assert first == second
    # ... and both match this process's generation.
    assert first["digest"] == topology_digest(SMALL)
    assert [tuple(entry) for entry in first["tasks"]] \
        == [(t.task_id, t.instruction, t.checker.kind, t.checker.key,
             t.checker.expected) for t in synthetic_suite(SMALL)]


def test_task_check_outcomes_are_identical_across_two_processes():
    probe = (
        "import json\n"
        "from repro.bench.runner import BenchmarkConfig, BenchmarkRunner, "
        "setting_by_key\n"
        "from repro.bench.tasks import task_by_id\n"
        f"tasks = [task_by_id('syn:{SMALL}:%04d' % i) for i in range(4)]\n"
        "runner = BenchmarkRunner(BenchmarkConfig(trials=1, tasks=tasks))\n"
        "specs = runner.trial_specs([setting_by_key('dmi-gpt5-medium')])\n"
        "print(json.dumps([runner.run_spec(s).as_dict() for s in specs]))\n")
    assert json.loads(_in_subprocess(probe)) == json.loads(_in_subprocess(probe))


def test_different_seeds_yield_different_digests():
    digests = {topology_digest(f"seed={seed}") for seed in range(6)}
    assert len(digests) == 6


def test_regeneration_yields_equal_tasks_in_process():
    spec = SyntheticSpec.parse(SMALL)
    # _generate_tasks bypasses the memo: equality here is regeneration
    # equality, exactly what ParallelExecutor's registry check relies on.
    assert _generate_tasks(spec) == _generate_tasks(spec) \
        == synthetic_suite(spec)


def test_checkers_are_value_equal_and_callable():
    assert SyntheticCheck("toggle", "A") == SyntheticCheck("toggle", "A")
    assert SyntheticCheck("toggle", "A") != SyntheticCheck("toggle", "B")
    app = SyntheticApp(SMALL)
    check = SyntheticCheck("toggle", next(iter(app.state.toggles)))
    assert check(app) is False
    app._turn_on(check.key)
    assert check(app) is True


# ----------------------------------------------------------------------
# registry integration (task_by_id / app_factory)
# ----------------------------------------------------------------------
def test_task_by_id_resolves_syn_ids_to_the_generated_suite():
    suite = synthetic_suite(SMALL)
    assert task_by_id(suite[0].task_id) == suite[0]
    assert synthetic_task(suite[-1].task_id) == suite[-1]
    # Hand-written ids are untouched by the fallback.
    assert task_by_id("word-02-landscape").app == "word"


@pytest.mark.parametrize("bad", [
    "syn:", "syn:garbage", "syn:garbage:0001", f"syn:{SMALL}:9999",
    f"syn:{SMALL}:abc",
])
def test_malformed_or_out_of_range_syn_ids_raise_key_error(bad):
    with pytest.raises(KeyError):
        task_by_id(bad)


def test_app_factory_resolves_synthetic_names():
    factory = app_factory(f"synthetic:{SMALL}")
    assert factory.APP_VERSION == SyntheticApp.APP_VERSION
    app = factory()
    assert isinstance(app, SyntheticApp)
    assert app.spec.token() == SMALL
    with pytest.raises(KeyError):
        app_factory("synthetic:not-a-token")
    with pytest.raises(KeyError):
        app_factory("no-such-app")


# ----------------------------------------------------------------------
# generated topology properties
# ----------------------------------------------------------------------
def test_cycle_knob_controls_ung_cycles_and_rips_terminate():
    cyclic = GuiRipper(SyntheticApp(SMALL)).rip()
    assert cyclic.has_cycle()
    acyclic_token = SMALL.replace("-cy1-", "-cy0-")
    acyclic = GuiRipper(SyntheticApp(acyclic_token)).rip()
    assert not acyclic.has_cycle()
    assert len(cyclic.nodes) > len(acyclic.nodes)


def test_contextual_tabs_are_hidden_and_registered_as_contexts():
    app = SyntheticApp(SMALL)
    contextual = [tab for tab in app.topology["tabs"] if tab["contextual"]]
    assert len(contextual) == 1
    tab = app.ribbon.tabs[contextual[0]["title"]]
    assert not tab.visible
    plan = context_plan_for(app)
    assert any(contextual[0]["title"] in context.name for context in plan)
    # The context setup only flips visibility — the self-perturbation trap
    # (PowerPoint's shape-inserting setup) is deliberately avoided.
    app.exploration_contexts()[f"{contextual[0]['title']} active"]()
    assert tab.visible


def test_dialog_chain_opens_nested_modal_dialogs():
    app = SyntheticApp(SMALL)
    dialogs = app.topology["dialogs"]
    app._open_chain_dialog(0)
    app._open_chain_dialog(1)
    titles = [window.name for window in app.desktop.windows]
    assert dialogs[0]["title"] in titles and dialogs[1]["title"] in titles


def test_every_generated_task_is_solvable_by_an_oracle_profile():
    base = [s for s in TABLE3_SETTINGS if s.key == "dmi-gpt5-medium"][0]
    profile = dataclasses.replace(
        base.profile, grounding_error_rate=0.0, nav_plan_error_rate=0.0,
        composite_error_rate=0.0, visual_parse_error_rate=0.0,
        semantic_error_rate=0.0, instruction_following_error=0.0)
    oracle = dataclasses.replace(base, key="dmi-oracle", profile=profile)
    suite = synthetic_suite(SMALL)
    runner = BenchmarkRunner(BenchmarkConfig(trials=1))
    for spec in runner.trial_specs([oracle], tasks=suite):
        result = runner.run_spec(spec)
        assert result.success, (
            f"{result.task_id} unsolvable even with zero simulated error "
            f"rates: {result.failure.detail if result.failure else '?'}")


# ----------------------------------------------------------------------
# scale-out
# ----------------------------------------------------------------------
def test_generated_grids_reach_100x_the_hand_written_suite():
    hand_written = len(all_tasks())
    spec = SyntheticSpec.parse("seed=11,tasks=450")
    suite = synthetic_suite(spec)
    ids = [task.task_id for task in suite]
    assert len(set(ids)) == len(ids) == 450
    # 450 tasks × 2 settings × 3 trials = 2700 trial specs — ≥100× the
    # 27-task hand-written grid — and the shard planner partitions it.
    specs = expand_trial_specs(11, 3, ["gui-gpt5-medium", "dmi-gpt5-medium"],
                               ids)
    assert len(specs) >= 100 * hand_written
    plan = plan_shards(8, seed=11, trials=3,
                       setting_keys=["gui-gpt5-medium", "dmi-gpt5-medium"],
                       task_ids=ids)
    assert sum(len(m.specs) for m in plan.manifests) == len(specs)


def test_topology_scales_with_the_knobs():
    small = topology_for("seed=1,tabs=2,groups=1,controls=2")
    wide = topology_for("seed=1,tabs=6,groups=3,controls=5")

    def control_count(topology):
        return sum(len(group["toggles"])
                   for tab in topology["tabs"] for group in tab["groups"])

    assert control_count(wide) > 4 * control_count(small)
