"""Tests for event-driven incremental ripping.

Covers the PR 6 tentpole end to end: the UI-change event bus
(:mod:`repro.gui.changes`) and its wiring through the widget layer, the
trace-recording full rip, replay-based incremental rips (byte-identical
splicing, reuse accounting, every fallback reason), the ``rip_full`` /
``rip_incremental`` telemetry events, the artifact-refresh fast path, and a
property-based sweep of random mutation sequences on
:class:`~repro.apps.mutable.MutableDemoApp`.
"""

import json

import pytest

from repro.apps.mutable import MutableDemoApp
from repro.bench.telemetry import AggregatingSink, use_sink
from repro.dmi.interface import (
    DMIConfig,
    build_offline_artifacts,
    refresh_offline_artifacts,
)
from repro.gui.changes import UIChangeLog
from repro.gui.widgets import Button
from repro.ripping.ripper import (
    GuiRipper,
    RipperConfig,
    rip_application,
    rip_application_incremental,
)
from repro.topology.persistence import ung_digest, ung_to_dict
from repro.topology.serialize import serialize_forest


def ung_bytes(ung) -> bytes:
    """The exact bytes ``save_ung`` would write (modulo the rip report)."""
    return json.dumps(ung_to_dict(ung), indent=1,
                      ensure_ascii=False).encode("utf-8")


def traced_rip(app):
    """Full rip returning (ung, report, trace)."""
    ripper = GuiRipper(app)
    ung = ripper.rip()
    return ung, ripper.report, ripper.trace


# ----------------------------------------------------------------------
# UIChangeLog
# ----------------------------------------------------------------------
def test_change_log_revisions_are_monotonic():
    log = UIChangeLog()
    assert log.revision == 0
    log.publish("widget_added", window="Main", identifier="a")
    log.publish("widget_removed", window="Main", identifier="b")
    assert log.revision == 2
    assert log.pending() == 2
    assert [c.revision for c in log.drain().changes] == [1, 2]


def test_change_log_drain_covers_revisions_and_resets():
    log = UIChangeLog()
    log.publish("x", window="A")
    log.publish("y", window="B")
    batch = log.drain()
    assert (batch.from_revision, batch.to_revision) == (0, 2)
    assert [c.kind for c in batch.changes] == ["x", "y"]
    assert not batch.overflowed
    assert log.pending() == 0
    # The next batch starts where the last one ended.
    log.publish("z", window="A")
    batch2 = log.drain()
    assert (batch2.from_revision, batch2.to_revision) == (2, 3)


def test_change_log_dirty_windows_distinct_in_publish_order():
    log = UIChangeLog()
    for window in ("B", "A", "B", "C", "A"):
        log.publish("k", window=window)
    assert log.drain().dirty_windows() == ("B", "A", "C")


def test_change_log_overflow_drops_changes_but_keeps_revisions():
    log = UIChangeLog(capacity=2)
    for i in range(5):
        log.publish("k", window="W", identifier=str(i))
    batch = log.drain()
    assert batch.overflowed
    assert len(batch.changes) == 2
    assert batch.to_revision == 5          # revisions never stop counting
    assert not log.drain().overflowed      # drain resets the overflow flag


# ----------------------------------------------------------------------
# event wiring through the widget layer
# ----------------------------------------------------------------------
def test_widget_add_remove_publish_scoped_changes(mini_app):
    home = mini_app.window.children[0]
    before = mini_app.ui_revision
    button = home.add_child(Button("Extra", automation_id="Mini.Extra"))
    home.remove_child(button)
    batch = mini_app.ui_changes.drain()
    kinds = [c.kind for c in batch.changes]
    assert "widget_added" in kinds and "widget_removed" in kinds
    assert mini_app.ui_revision >= before + 2
    # Changes are scoped to the main window's title.
    assert set(batch.dirty_windows()) == {mini_app.window.name}


def test_edit_set_text_publishes_property_change(mini_app):
    edit = next(e for e in mini_app.window.iter_subtree()
                if e.name == "Name Field")
    mini_app.ui_changes.drain()
    edit.set_text("hello")
    kinds = [c.kind for c in mini_app.ui_changes.drain().changes]
    assert kinds == ["property_changed"]


def test_tab_activation_publishes_change():
    app = MutableDemoApp()
    app.ui_changes.drain()
    app.toggle_tab()
    kinds = [c.kind for c in app.ui_changes.drain().changes]
    assert "tab_activated" in kinds


def test_dialog_open_close_publish_window_events(mini_app):
    mini_app.ui_changes.drain()
    mini_app._open_settings()
    mini_app.close_all_dialogs()
    kinds = [c.kind for c in mini_app.ui_changes.drain().changes]
    assert "window_opened" in kinds and "window_closed" in kinds


def test_build_ui_publishes_nothing():
    assert MutableDemoApp().ui_revision == 0


# ----------------------------------------------------------------------
# trace recording + replay
# ----------------------------------------------------------------------
def test_full_rip_records_a_replayable_trace(mini_app):
    ung, report, trace = traced_rip(mini_app)
    assert report.mode == "full"
    assert report.nodes_visited == report.clicks > 0
    assert trace.app_name == mini_app.APP_NAME
    assert trace.app_version == mini_app.APP_VERSION
    activated = [r for r in trace.records.values() if r.outcome == "activated"]
    assert len(activated) == report.clicks


def test_zero_mutation_incremental_rip_replays_everything(mini_app):
    ung, report, trace = traced_rip(mini_app)
    ripper = GuiRipper(mini_app)
    ung2 = ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "incremental"
    assert ripper.report.nodes_visited == 0
    assert ripper.report.nodes_reused == report.clicks
    assert ripper.report.clicks == report.clicks  # virtual-click parity
    assert ung_bytes(ung2) == ung_bytes(ung)


def test_incremental_rip_chains_across_traces(mini_app):
    ung, _, trace = traced_rip(mini_app)
    for _ in range(3):
        ripper = GuiRipper(mini_app)
        ung2 = ripper.rip_incremental(ung, trace)
        assert ripper.report.mode == "incremental"
        assert ung_bytes(ung2) == ung_bytes(ung)
        ung, trace = ung2, ripper.trace


def test_dialog_mutation_rips_incrementally_and_byte_identically():
    app = MutableDemoApp()
    ung, full_report, trace = traced_rip(app)
    app.mutate_dialog_spec("checkbox", "Night mode")
    ripper = GuiRipper(app)
    ung2 = ripper.rip_incremental(ung, trace)
    report = ripper.report
    assert report.mode == "incremental" and report.fallback_reason == ""
    # Tentpole acceptance: a single-dialog mutation re-explores well under
    # 20% of what the full rip visited.
    assert report.nodes_visited < 0.2 * full_report.nodes_visited
    assert report.nodes_reused > 0 and report.nodes_patched > 0
    # Byte-identical to ripping the mutated app from scratch.
    reference = MutableDemoApp()
    reference.mutate_dialog_spec("checkbox", "Night mode")
    assert ung_bytes(ung2) == ung_bytes(rip_application(reference)[0])


def test_main_window_mutation_still_byte_identical():
    app = MutableDemoApp()
    ung, _, trace = traced_rip(app)
    app.add_quick_button("Format Painter")
    ripper = GuiRipper(app)
    ung2 = ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "incremental"
    reference = MutableDemoApp()
    reference.add_quick_button("Format Painter")
    assert ung_bytes(ung2) == ung_bytes(rip_application(reference)[0])


def test_rip_application_incremental_helper(mini_app):
    ung, _, trace = traced_rip(mini_app)
    ung2, report, trace2 = rip_application_incremental(mini_app, ung, trace)
    assert report.mode == "incremental"
    assert trace2.records  # a fresh trace chains the next rip


# ----------------------------------------------------------------------
# fallback semantics
# ----------------------------------------------------------------------
def test_fallback_without_a_trace(mini_app):
    ung, _, _ = traced_rip(mini_app)
    ripper = GuiRipper(mini_app)
    ung2 = ripper.rip_incremental(ung, None)
    assert ripper.report.mode == "full"
    assert "trace" in ripper.report.fallback_reason
    assert ung_bytes(ung2) == ung_bytes(ung)


def test_fallback_on_change_log_overflow():
    app = MutableDemoApp()
    app.ui_changes = UIChangeLog(capacity=2)
    ung, _, trace = traced_rip(app)
    for i in range(5):
        app.mutate_dialog_spec("checkbox", f"Option {i}")
    ripper = GuiRipper(app)
    ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "full"
    assert "overflow" in ripper.report.fallback_reason


def test_fallback_on_revision_gap(mini_app):
    ung, _, trace = traced_rip(mini_app)
    # An intervening full rip drains the change log past the trace's
    # revision: the outstanding trace can no longer prove it saw every
    # change, so the next incremental attempt must fall back.
    rip_application(mini_app)
    ripper = GuiRipper(mini_app)
    ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "full"
    assert "gap" in ripper.report.fallback_reason


def test_fresh_instance_transfer_replays_without_a_gap():
    """The model-transfer case: a trace recorded on one instance replays
    against a *fresh* instance of the same build.  The fresh change log
    (never written, revision 0) means "unchanged since build" — no gap,
    empty dirty set — and the replay reproduces the model bit for bit."""
    recorder = MutableDemoApp()
    ung, _, trace = traced_rip(recorder)
    assert trace.ui_revision > 0  # self-traffic stamped the trace
    fresh = MutableDemoApp()
    ripper = GuiRipper(fresh)
    spliced = ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "incremental"
    assert ripper.report.nodes_visited == 0
    assert ung_bytes(spliced) == ung_bytes(ung)


def test_pure_replay_divergence_falls_back_to_a_full_rip():
    """A zero-dirty replay must reproduce the prior graph exactly; when it
    cannot (PowerPoint's context setup inserts shapes, so exploration
    perturbs the very state the trace describes), the ripper detects the
    divergence and re-rips fully instead of returning a silently wrong
    splice."""
    from repro.apps import PowerPointApp

    recorder = PowerPointApp()
    ung, _, trace = traced_rip(recorder)
    ripper = GuiRipper(PowerPointApp())
    ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "full"
    assert "drifted" in ripper.report.fallback_reason


def test_fallback_on_app_name_mismatch(mini_app):
    ung, _, trace = traced_rip(mini_app)
    other = MutableDemoApp()
    ripper = GuiRipper(other)
    ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "full"
    assert "MiniApp" in ripper.report.fallback_reason


def test_fallback_on_app_version_mismatch():
    class Rebuilt(MutableDemoApp):
        APP_VERSION = "2.0"

    app = MutableDemoApp()
    ung, _, trace = traced_rip(app)
    rebuilt = Rebuilt()
    ripper = GuiRipper(rebuilt)
    ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "full"
    assert "version" in ripper.report.fallback_reason


def test_fallback_on_config_digest_mismatch(mini_app):
    ung, _, trace = traced_rip(mini_app)
    ripper = GuiRipper(mini_app, config=RipperConfig(max_depth=5))
    ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "full"
    assert "config" in ripper.report.fallback_reason


def test_fallback_produces_correct_graph_anyway():
    app = MutableDemoApp()
    ung, _, trace = traced_rip(app)
    app.mutate_dialog_spec("edit", "Proxy")
    rip_application(app)            # drains the log -> gap on next attempt
    ripper = GuiRipper(app)
    ung2 = ripper.rip_incremental(ung, trace)
    assert ripper.report.mode == "full"
    reference = MutableDemoApp()
    reference.mutate_dialog_spec("edit", "Proxy")
    assert ung_bytes(ung2) == ung_bytes(rip_application(reference)[0])


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
def test_full_rip_emits_rip_full_event(mini_app):
    with use_sink(AggregatingSink()) as sink:
        _, report, _ = traced_rip(mini_app)
    assert sink.count("rip_full") == 1
    assert sink.count("rip_incremental") == 0


def test_incremental_rip_emits_rip_incremental_event():
    app = MutableDemoApp()
    ung, _, trace = traced_rip(app)
    app.mutate_dialog_spec("checkbox", "Night mode")
    with use_sink(AggregatingSink()) as sink:
        ripper = GuiRipper(app)
        ripper.rip_incremental(ung, trace)
    assert sink.count("rip_incremental") == 1
    report = ripper.report
    expected = report.nodes_reused / (report.nodes_reused +
                                      report.nodes_visited)
    assert 0.8 < expected <= 1.0  # a dialog tweak reuses the vast majority


def test_fallback_emits_rip_full_with_reason(mini_app):
    ung, _, trace = traced_rip(mini_app)
    rip_application(mini_app)  # invalidate via drain -> gap
    events = []

    class Capture:
        def emit(self, event):
            events.append(event)

        def __bool__(self):
            return True

    ripper = GuiRipper(mini_app, sink=Capture())
    ripper.rip_incremental(ung, trace)
    names = [type(event).__name__ for event in events]
    assert "RipIncremental" not in names
    rip_events = [e for e in events if type(e).__name__ == "RipFull"]
    assert rip_events and "gap" in rip_events[-1].reason


# ----------------------------------------------------------------------
# artifact refresh (forest re-derivation fast path)
# ----------------------------------------------------------------------
def test_refresh_reuses_forest_when_ung_unchanged(mini_app):
    artifacts = build_offline_artifacts(mini_app)
    _, _, trace = traced_rip(mini_app)
    refreshed, trace2 = refresh_offline_artifacts(mini_app, artifacts, trace)
    assert ung_digest(refreshed.ung) == ung_digest(artifacts.ung)
    assert refreshed.forest is artifacts.forest  # no re-derivation
    assert trace2.records


def test_refresh_rebuilds_forest_when_ung_changed():
    app = MutableDemoApp()
    artifacts = build_offline_artifacts(app)
    _, _, trace = traced_rip(app)
    app.mutate_dialog_spec("checkbox", "Night mode")
    refreshed, _ = refresh_offline_artifacts(app, artifacts, trace)
    assert refreshed.forest is not artifacts.forest
    # The refreshed artefacts match a from-scratch build of the mutated app.
    reference = MutableDemoApp()
    reference.mutate_dialog_spec("checkbox", "Night mode")
    scratch = build_offline_artifacts(reference)
    assert ung_bytes(refreshed.ung) == ung_bytes(scratch.ung)
    assert serialize_forest(refreshed.forest) == serialize_forest(scratch.forest)


# ----------------------------------------------------------------------
# property-based equivalence: random mutation sequences
# ----------------------------------------------------------------------
MUTATIONS = (
    lambda app, i: app.add_quick_button(f"Action {i}"),
    lambda app, i: app.set_status_line(f"status {i}"),
    lambda app, i: app.toggle_tab(),
    lambda app, i: app.mutate_dialog_spec("checkbox", f"Option {i}"),
    lambda app, i: app.mutate_dialog_spec("edit", f"Field {i}"),
    lambda app, i: (app.add_quick_button(f"Temp {i}"),
                    app.remove_quick_button(f"Temp {i}")),
)


def test_random_mutation_sequences_stay_byte_identical(rng):
    """Satellite acceptance: any random mutation sequence leaves the
    incremental rip byte-identical (serialized UNG *and* forest) to a full
    re-rip of the same mutated application."""
    for round_index in range(6):
        seed = rng.randrange(10 ** 6)
        script = [(rng.randrange(len(MUTATIONS)), seed * 10 + step)
                  for step in range(rng.randint(1, 4))]

        app = MutableDemoApp()
        ung, _, trace = traced_rip(app)
        for mutation_index, step_id in script:
            MUTATIONS[mutation_index](app, step_id)
        ripper = GuiRipper(app)
        ung2 = ripper.rip_incremental(ung, trace)
        assert ripper.report.mode == "incremental", \
            f"round {round_index}: fell back: {ripper.report.fallback_reason}"

        reference = MutableDemoApp()
        for mutation_index, step_id in script:
            MUTATIONS[mutation_index](reference, step_id)
        reference_ung = rip_application(reference)[0]
        assert ung_bytes(ung2) == ung_bytes(reference_ung), \
            f"round {round_index}: script {script} diverged"


def test_random_mutation_sequences_chain_traces(rng):
    """Repeated mutate -> incremental-rip cycles keep chaining: each rip's
    trace replays the next, and every step stays byte-identical to a full
    rip of an identically mutated twin.  (Rips are non-destructive and
    deterministic, so ripping the live twin gives the from-scratch
    reference without replaying the mutation history on a fresh app.)"""
    app = MutableDemoApp()
    twin = MutableDemoApp()
    ung, _, trace = traced_rip(app)
    for step in range(5):
        mutation_index = rng.randrange(len(MUTATIONS))
        MUTATIONS[mutation_index](app, step)
        MUTATIONS[mutation_index](twin, step)
        ripper = GuiRipper(app)
        ung = ripper.rip_incremental(ung, trace)
        trace = ripper.trace
        assert ripper.report.mode == "incremental"
        assert ung_bytes(ung) == ung_bytes(rip_application(twin)[0])
