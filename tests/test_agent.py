"""Tests for the agent framework: labelling, sessions, baseline and DMI agents."""

import dataclasses
import random

import pytest

from repro.agent.app_agent import GuiAgentConfig, GuiAppAgent
from repro.agent.dmi_agent import DmiAgentConfig, DmiAppAgent
from repro.agent.host_agent import FRAMEWORK_OVERHEAD_STEPS, HostAgent
from repro.agent.labeling import alphabetic_labels, label_visible_controls, labelled_prompt_tokens
from repro.agent.session import (
    FailureRecord,
    InterfaceSetting,
    LLMCallRecord,
    SessionResult,
)
from repro.apps import PowerPointApp, WordApp
from repro.bench.tasks import task_by_id
from repro.dmi.interface import DMI
from repro.llm.profiles import GPT5_MEDIUM
from repro.spec import FailureCategory, FailureCause


PERFECT = dataclasses.replace(
    GPT5_MEDIUM, grounding_error_rate=0.0, nav_plan_error_rate=0.0,
    composite_error_rate=0.0, visual_parse_error_rate=0.0, semantic_error_rate=0.0,
    instruction_following_error=0.0, recovery_competence=1.0, knows_app_structure=True)

CLUMSY = dataclasses.replace(
    GPT5_MEDIUM, grounding_error_rate=0.9, nav_plan_error_rate=0.5,
    composite_error_rate=0.9, recovery_competence=0.1, semantic_error_rate=0.0,
    instruction_following_error=0.0)


# ----------------------------------------------------------------------
# labelling
# ----------------------------------------------------------------------
def test_alphabetic_labels_sequence():
    labels = alphabetic_labels(30)
    assert labels[:3] == ["A", "B", "C"]
    assert labels[25] == "Z"
    assert labels[26] == "AA"
    assert len(set(labels)) == 30


def test_label_visible_controls_only_named_and_visible(ppt_app):
    labelling = label_visible_controls([ppt_app.window])
    assert labelling
    assert all(element.name for element in labelling.values())
    assert all(element.is_on_screen() for element in labelling.values())
    assert labelled_prompt_tokens(labelling) > 100


# ----------------------------------------------------------------------
# session records
# ----------------------------------------------------------------------
def test_session_result_accumulates_calls_actions_and_tokens():
    result = SessionResult(task_id="t", app="word", interface=InterfaceSetting.GUI_ONLY,
                           model="gpt-5", reasoning="medium")
    result.record_call(LLMCallRecord(role="host", purpose="decompose",
                                     prompt_tokens=100, completion_tokens=10, latency_s=5))
    result.record_call(LLMCallRecord(role="app", purpose="execute",
                                     prompt_tokens=200, completion_tokens=20, latency_s=7))
    result.record_actions(3, seconds_per_action=0.5)
    assert result.steps == 2 and result.core_steps == 1
    assert result.prompt_tokens == 300 and result.total_tokens() == 330
    assert result.wall_time_s == pytest.approx(13.5)
    as_dict = result.as_dict()
    assert as_dict["interface"] == "gui-only" and as_dict["failure_cause"] is None


def test_failure_record_category_mapping():
    assert FailureRecord(FailureCause.AMBIGUOUS_TASK).category == FailureCategory.POLICY
    assert FailureRecord(FailureCause.COMPOSITE_INTERACTION).category == FailureCategory.MECHANISM
    assert FailureRecord(FailureCause.TOPOLOGY_INACCURACY).category == FailureCategory.MECHANISM


def test_interface_setting_flags():
    assert InterfaceSetting.GUI_PLUS_DMI.uses_dmi
    assert not InterfaceSetting.GUI_ONLY.uses_dmi
    assert InterfaceSetting.GUI_PLUS_FOREST.has_forest_knowledge
    assert not InterfaceSetting.GUI_ONLY.has_forest_knowledge


# ----------------------------------------------------------------------
# GUI baseline agent
# ----------------------------------------------------------------------
def run_gui(task_id, artifacts, app, profile=PERFECT, seed=3):
    task = task_by_id(task_id)
    agent = GuiAppAgent(app, artifacts.forest, profile, InterfaceSetting.GUI_ONLY,
                        rng=random.Random(seed), core=artifacts.core)
    result = SessionResult(task_id=task.task_id, app=task.app,
                           interface=InterfaceSetting.GUI_ONLY,
                           model=profile.name, reasoning=profile.reasoning)
    agent.execute_task(task, result)
    return result, agent


def test_gui_agent_completes_simple_task_with_perfect_profile(word_artifacts):
    result, _ = run_gui("word-02-landscape", word_artifacts, WordApp())
    assert result.success
    assert result.core_steps >= 2          # navigate tab, then menu item
    assert result.actions >= 2
    assert result.failure is None


def test_gui_agent_requires_multiple_rounds_for_dialog_task(ppt_artifacts):
    result, _ = run_gui("ppt-01-blue-background", ppt_artifacts, PowerPointApp())
    assert result.success
    assert result.core_steps >= 3          # tab, dialog, colour, apply
    assert result.prompt_tokens > 0


def test_gui_agent_fails_and_classifies_mechanism_with_clumsy_profile(ppt_artifacts):
    failures = 0
    mechanism = 0
    for seed in range(6):
        result, _ = run_gui("ppt-01-blue-background", ppt_artifacts, PowerPointApp(),
                            profile=CLUMSY, seed=seed)
        if not result.success:
            failures += 1
            if result.failure.category == FailureCategory.MECHANISM:
                mechanism += 1
    assert failures >= 4
    assert mechanism >= failures - 1


def test_gui_agent_respects_step_budget(ppt_artifacts):
    task = task_by_id("ppt-01-blue-background")
    config = GuiAgentConfig(max_total_steps=5)
    agent = GuiAppAgent(PowerPointApp(), ppt_artifacts.forest, CLUMSY,
                        InterfaceSetting.GUI_ONLY, rng=random.Random(0), config=config)
    result = SessionResult(task_id=task.task_id, app=task.app,
                           interface=InterfaceSetting.GUI_ONLY, model="m", reasoning="r")
    agent.execute_task(task, result)
    assert result.core_steps <= 2
    if not result.success:
        assert result.failure is not None


def test_gui_agent_composite_scroll_task(ppt_artifacts):
    result, _ = run_gui("ppt-02-scroll-to-end", ppt_artifacts, PowerPointApp())
    assert result.success
    assert result.actions >= 3             # press/drag/release


def test_gui_agent_semantic_corruption_yields_policy_failure(ppt_artifacts):
    profile = dataclasses.replace(PERFECT, semantic_error_rate=1.0)
    result, _ = run_gui("ppt-01-blue-background", ppt_artifacts, PowerPointApp(),
                        profile=profile, seed=5)
    assert not result.success
    assert result.failure.category == FailureCategory.POLICY


# ----------------------------------------------------------------------
# DMI agent
# ----------------------------------------------------------------------
def run_dmi(task_id, artifacts, app, profile=PERFECT, seed=3, **config_kwargs):
    task = task_by_id(task_id)
    dmi = DMI(app, artifacts)
    config_kwargs.setdefault("topology_gap_rate", 0.0)
    config = DmiAgentConfig(**config_kwargs)
    agent = DmiAppAgent(app, dmi, profile, rng=random.Random(seed), config=config)
    result = SessionResult(task_id=task.task_id, app=task.app,
                           interface=InterfaceSetting.GUI_PLUS_DMI,
                           model=profile.name, reasoning=profile.reasoning)
    agent.execute_task(task, result)
    return result


def test_dmi_agent_one_shot_completion(ppt_artifacts):
    result = run_dmi("ppt-01-blue-background", ppt_artifacts, PowerPointApp())
    assert result.success
    assert result.core_steps == 1
    assert result.one_shot


def test_dmi_agent_state_declaration_task(ppt_artifacts):
    result = run_dmi("ppt-02-scroll-to-end", ppt_artifacts, PowerPointApp())
    assert result.success and result.core_steps == 1


def test_dmi_agent_topology_gap_falls_back_to_gui_and_still_succeeds(ppt_artifacts):
    result = run_dmi("ppt-01-blue-background", ppt_artifacts, PowerPointApp(),
                     topology_gap_rate=1.0)
    assert result.success
    assert result.core_steps > 1
    assert any("fallback" in note for note in result.notes)


def test_dmi_agent_policy_failure_classification(ppt_artifacts):
    profile = dataclasses.replace(PERFECT, semantic_error_rate=1.0)
    result = run_dmi("ppt-01-blue-background", ppt_artifacts, PowerPointApp(),
                     profile=profile, seed=9)
    assert not result.success
    assert result.failure.category == FailureCategory.POLICY


def test_dmi_agent_observation_task_has_no_visual_misreads(excel_artifacts):
    from repro.apps import ExcelApp

    profile = dataclasses.replace(PERFECT, visual_parse_error_rate=1.0)
    result = run_dmi("excel-09-bold-top-product", excel_artifacts, ExcelApp(), profile=profile)
    assert result.success, "structured get_texts shields DMI from visual misreads"


# ----------------------------------------------------------------------
# host agent
# ----------------------------------------------------------------------
def test_host_agent_adds_fixed_framework_overhead(ppt_artifacts):
    task = task_by_id("ppt-01-blue-background")
    app = PowerPointApp()
    host = HostAgent(PERFECT, InterfaceSetting.GUI_PLUS_DMI, rng=random.Random(0))
    dmi = DMI(app, ppt_artifacts)
    result = host.run_task(task, app, ppt_artifacts.forest, core=ppt_artifacts.core, dmi=dmi,
                           dmi_config=DmiAgentConfig(topology_gap_rate=0.0))
    assert result.success
    assert result.steps == result.core_steps + FRAMEWORK_OVERHEAD_STEPS
    assert result.one_shot == (result.core_steps == 1)
    roles = [c.role for c in result.calls]
    assert roles[0] == "host" and roles[-1] == "host"


def test_host_agent_requires_dmi_instance_for_dmi_setting(ppt_artifacts):
    host = HostAgent(PERFECT, InterfaceSetting.GUI_PLUS_DMI)
    with pytest.raises(ValueError):
        host.run_task(task_by_id("ppt-01-blue-background"), PowerPointApp(),
                      ppt_artifacts.forest)


def test_host_agent_gui_only_runs_without_dmi(word_artifacts):
    host = HostAgent(PERFECT, InterfaceSetting.GUI_ONLY, rng=random.Random(1))
    result = host.run_task(task_by_id("word-02-landscape"), WordApp(), word_artifacts.forest,
                           core=word_artifacts.core)
    assert result.success
    assert result.steps >= FRAMEWORK_OVERHEAD_STEPS + 1
