"""Reusable equivalence harness: every execution path must be bit-identical.

The strongest guarantee this codebase sells is that the *same* (seed, grid)
produces the *same bytes* no matter how the work is executed.  This helper
runs one grid through every execution path and returns each path's canonical
JSON export so tests can compare them byte-for-byte:

``serial``
    :class:`~repro.bench.engine.SerialExecutor` in-process — the reference
    semantics everything else must match.
``parallel``
    :class:`~repro.bench.engine.ParallelExecutor` over a 2-process pool.
``file-shards``
    PR 2's file pipeline: ``plan_shards`` → manifests written to and
    re-loaded from disk → one :class:`~repro.bench.shard.ManifestExecutor`
    per manifest → results files → ``merge_shard_results``.
``broker``
    PR 3's queue: :class:`~repro.bench.transport.LocalDirBroker` ``submit``
    → two sequential :class:`~repro.bench.transport.ShardWorker` pull loops
    → ``collect`` → ``merge_shard_results``.
``store-broker``
    PR 4's cloud-shaped queue: the same submit/work/collect flow through an
    :class:`~repro.bench.transport.ObjectStoreBroker` over a
    :class:`~repro.bench.store.FileSystemObjectStore` (CAS leases instead
    of renames), with worker heartbeats left at their defaults.

Use :func:`assert_paths_bit_identical` from a test, parametrized over seeds
and shard counts; it returns the reference bytes for extra assertions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Sequence

from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    RunOutcome,
    setting_by_key,
)
from repro.bench.shard import (
    ManifestExecutor,
    ShardManifest,
    ShardResults,
    merge_shard_results,
    plan_shards,
)
from repro.bench.tasks import task_by_id
from repro.bench.store import FileSystemObjectStore
from repro.bench.transport import LocalDirBroker, ObjectStoreBroker, ShardWorker
from repro.cli import export_settings_payload

#: A small two-app grid that still exercises both interface stacks.
DEFAULT_TASKS = ("ppt-01-blue-background", "word-02-landscape")
DEFAULT_SETTINGS = ("gui-gpt5-medium", "dmi-gpt5-medium")


def outcomes_bytes(outcomes: Dict[str, RunOutcome]) -> bytes:
    """One canonical byte serialization of a run's outcomes.

    Uses the CLI's own ``--export`` settings payload (label + aggregate
    summary + every per-trial result) — not a test-local mirror of it — and
    excludes execution-specific config, so two paths agree exactly when
    their *results* agree exactly.
    """
    return json.dumps(export_settings_payload(outcomes), indent=1,
                      ensure_ascii=False).encode("utf-8")


def _runner(seed: int, trials: int, task_ids: Sequence[str],
            jobs: int = 1, cache_dir=None) -> BenchmarkRunner:
    return BenchmarkRunner(BenchmarkConfig(
        trials=trials, seed=seed, jobs=jobs, cache_dir=cache_dir,
        tasks=[task_by_id(task_id) for task_id in task_ids]))


def run_serial(seed: int, trials: int, setting_keys: Sequence[str],
               task_ids: Sequence[str]) -> bytes:
    runner = _runner(seed, trials, task_ids)
    return outcomes_bytes(runner.run_settings(
        [setting_by_key(key) for key in setting_keys]))


def run_parallel(seed: int, trials: int, setting_keys: Sequence[str],
                 task_ids: Sequence[str], work_dir: Path) -> bytes:
    runner = _runner(seed, trials, task_ids, jobs=2,
                     cache_dir=work_dir / "parallel-cache")
    return outcomes_bytes(runner.run_settings(
        [setting_by_key(key) for key in setting_keys]))


def run_file_shards(seed: int, trials: int, setting_keys: Sequence[str],
                    task_ids: Sequence[str], shard_count: int,
                    work_dir: Path) -> bytes:
    plan = plan_shards(shard_count, seed=seed, trials=trials,
                       setting_keys=setting_keys, task_ids=task_ids)
    manifest_paths = plan.write(work_dir / "manifests")
    executor = ManifestExecutor(cache_dir=work_dir / "shard-cache")
    result_paths = []
    for path in manifest_paths:
        shard = executor.run(ShardManifest.load(path))
        result_paths.append(shard.save(
            work_dir / "results" / f"results-{shard.manifest.shard_index}.json"))
    merged = merge_shard_results([ShardResults.load(path)
                                  for path in result_paths])
    return outcomes_bytes(merged)


def run_broker(seed: int, trials: int, setting_keys: Sequence[str],
               task_ids: Sequence[str], shard_count: int,
               work_dir: Path) -> bytes:
    plan = plan_shards(shard_count, seed=seed, trials=trials,
                       setting_keys=setting_keys, task_ids=task_ids)
    broker = LocalDirBroker(work_dir / "broker")
    broker.submit(plan)
    cache_dir = work_dir / "broker-cache"
    # Two workers sharing one cache dir, like two machines on shared storage:
    # the first takes exactly one manifest, the second drains the rest.
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-w0", poll=0, max_manifests=1).run()
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-w1", poll=0).run()
    merged = merge_shard_results(broker.collect())
    return outcomes_bytes(merged)


def run_store_broker(seed: int, trials: int, setting_keys: Sequence[str],
                     task_ids: Sequence[str], shard_count: int,
                     work_dir: Path) -> bytes:
    plan = plan_shards(shard_count, seed=seed, trials=trials,
                       setting_keys=setting_keys, task_ids=task_ids)
    broker = ObjectStoreBroker(FileSystemObjectStore(work_dir / "store"))
    broker.submit(plan)
    cache_dir = work_dir / "store-cache"
    # Same two-worker shape as run_broker, with heartbeats at their default
    # (lease_ttl / 3) so the background renewal thread rides along.
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-s0", poll=0, max_manifests=1).run()
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-s1", poll=0).run()
    merged = merge_shard_results(broker.collect())
    return outcomes_bytes(merged)


def run_all_paths(seed: int, trials: int, setting_keys: Sequence[str],
                  task_ids: Sequence[str], shard_count: int,
                  work_dir: Path) -> Dict[str, bytes]:
    """Execute the grid through all five paths; one bytes blob per path."""
    work_dir = Path(work_dir)
    return {
        "serial": run_serial(seed, trials, setting_keys, task_ids),
        "parallel": run_parallel(seed, trials, setting_keys, task_ids,
                                 work_dir / "parallel"),
        "file-shards": run_file_shards(seed, trials, setting_keys, task_ids,
                                       shard_count, work_dir / "file-shards"),
        "broker": run_broker(seed, trials, setting_keys, task_ids,
                             shard_count, work_dir / "broker"),
        "store-broker": run_store_broker(seed, trials, setting_keys,
                                         task_ids, shard_count,
                                         work_dir / "store-broker"),
    }


def assert_paths_bit_identical(seed: int, trials: int,
                               setting_keys: Sequence[str],
                               task_ids: Sequence[str], shard_count: int,
                               work_dir: Path) -> bytes:
    """Assert all four exports are byte-identical; returns the reference."""
    exports = run_all_paths(seed, trials, setting_keys, task_ids,
                            shard_count, work_dir)
    reference = exports["serial"]
    for name, blob in exports.items():
        assert blob == reference, (
            f"execution path {name!r} diverged from serial for seed={seed}, "
            f"shards={shard_count} ({len(blob)} vs {len(reference)} bytes)")
    return reference
