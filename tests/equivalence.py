"""Reusable equivalence harness: every execution path must be bit-identical.

The strongest guarantee this codebase sells is that the *same* (seed, grid)
produces the *same bytes* no matter how the work is executed.  This helper
runs one grid through every execution path and returns each path's canonical
JSON export so tests can compare them byte-for-byte:

``serial``
    :class:`~repro.bench.engine.SerialExecutor` in-process — the reference
    semantics everything else must match.
``parallel``
    :class:`~repro.bench.engine.ParallelExecutor` over a 2-process pool.
``file-shards``
    PR 2's file pipeline: ``plan_shards`` → manifests written to and
    re-loaded from disk → one :class:`~repro.bench.shard.ManifestExecutor`
    per manifest → results files → ``merge_shard_results``.
``broker``
    PR 3's queue: :class:`~repro.bench.transport.LocalDirBroker` ``submit``
    → two sequential :class:`~repro.bench.transport.ShardWorker` pull loops
    → ``collect`` → ``merge_shard_results``.
``store-broker``
    PR 4's cloud-shaped queue: the same submit/work/collect flow through an
    :class:`~repro.bench.transport.ObjectStoreBroker` over a
    :class:`~repro.bench.store.FileSystemObjectStore` (CAS leases instead
    of renames), with worker heartbeats left at their defaults.

Use :func:`assert_paths_bit_identical` from a test, parametrized over seeds
and shard counts; it returns the reference bytes for extra assertions.

Since PR 5 every path also runs under its own
:class:`~repro.bench.telemetry.AggregatingSink`, and
:func:`assert_paths_bit_identical` extends the guarantee from "same bytes"
to "same bytes, and the telemetry agrees": every path must report the same
number of started/finished trials and the same total simulated wall clock
(the *events* differ — cache/lease/backoff traffic is path-specific — but
the trial aggregates must not).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable, Dict, Sequence, Tuple

from repro.apps import app_factory
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    RunOutcome,
    setting_by_key,
)
from repro.bench.shard import (
    ManifestExecutor,
    ShardManifest,
    ShardResults,
    merge_shard_results,
    plan_shards,
)
from repro.bench.faults import FaultSchedule, FaultSpec, FaultyObjectStore
from repro.bench.tasks import task_by_id
from repro.bench.store import FileSystemObjectStore, RetryPolicy
from repro.bench.telemetry import AggregatingSink, use_sink
from repro.bench.transport import LocalDirBroker, ObjectStoreBroker, ShardWorker
from repro.cli import export_settings_payload
from repro.dmi.cache import ArtifactCache
from repro.dmi.interface import DMIConfig, rebuild_offline_artifacts
from repro.ripping.ripper import GuiRipper

#: A small two-app grid that still exercises both interface stacks.
DEFAULT_TASKS = ("ppt-01-blue-background", "word-02-landscape")
DEFAULT_SETTINGS = ("gui-gpt5-medium", "dmi-gpt5-medium")

#: A small generated scenario (2 visible tabs, dialog chain with a UI
#: cycle, one contextual tab, 4 tasks) used to prove the five-path
#: guarantee holds for synthetic apps too.  The token alone is the
#: fixture: every worker process regenerates the app and tasks from the
#: ``syn:`` ids.
SYNTHETIC_SPEC = "s3-t2-g1-c2-y3-m2-d2-cy1-x1-n4"


def synthetic_task_ids(spec: str = SYNTHETIC_SPEC) -> Tuple[str, ...]:
    from repro.apps.synthetic import SyntheticSpec, synthetic_suite

    return tuple(task.task_id
                 for task in synthetic_suite(SyntheticSpec.parse(spec)))


def outcomes_bytes(outcomes: Dict[str, RunOutcome]) -> bytes:
    """One canonical byte serialization of a run's outcomes.

    Uses the CLI's own ``--export`` settings payload (label + aggregate
    summary + every per-trial result) — not a test-local mirror of it — and
    excludes execution-specific config, so two paths agree exactly when
    their *results* agree exactly.
    """
    return json.dumps(export_settings_payload(outcomes), indent=1,
                      ensure_ascii=False).encode("utf-8")


def _runner(seed: int, trials: int, task_ids: Sequence[str],
            jobs: int = 1, cache_dir=None) -> BenchmarkRunner:
    return BenchmarkRunner(BenchmarkConfig(
        trials=trials, seed=seed, jobs=jobs, cache_dir=cache_dir,
        tasks=[task_by_id(task_id) for task_id in task_ids]))


def run_serial(seed: int, trials: int, setting_keys: Sequence[str],
               task_ids: Sequence[str]) -> bytes:
    runner = _runner(seed, trials, task_ids)
    return outcomes_bytes(runner.run_settings(
        [setting_by_key(key) for key in setting_keys]))


def run_parallel(seed: int, trials: int, setting_keys: Sequence[str],
                 task_ids: Sequence[str], work_dir: Path) -> bytes:
    runner = _runner(seed, trials, task_ids, jobs=2,
                     cache_dir=work_dir / "parallel-cache")
    return outcomes_bytes(runner.run_settings(
        [setting_by_key(key) for key in setting_keys]))


def run_file_shards(seed: int, trials: int, setting_keys: Sequence[str],
                    task_ids: Sequence[str], shard_count: int,
                    work_dir: Path) -> bytes:
    plan = plan_shards(shard_count, seed=seed, trials=trials,
                       setting_keys=setting_keys, task_ids=task_ids)
    manifest_paths = plan.write(work_dir / "manifests")
    executor = ManifestExecutor(cache_dir=work_dir / "shard-cache")
    result_paths = []
    for path in manifest_paths:
        shard = executor.run(ShardManifest.load(path))
        result_paths.append(shard.save(
            work_dir / "results" / f"results-{shard.manifest.shard_index}.json"))
    merged = merge_shard_results([ShardResults.load(path)
                                  for path in result_paths])
    return outcomes_bytes(merged)


def run_broker(seed: int, trials: int, setting_keys: Sequence[str],
               task_ids: Sequence[str], shard_count: int,
               work_dir: Path) -> bytes:
    plan = plan_shards(shard_count, seed=seed, trials=trials,
                       setting_keys=setting_keys, task_ids=task_ids)
    broker = LocalDirBroker(work_dir / "broker")
    broker.submit(plan)
    cache_dir = work_dir / "broker-cache"
    # Two workers sharing one cache dir, like two machines on shared storage:
    # the first takes exactly one manifest, the second drains the rest.
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-w0", poll=0, max_manifests=1).run()
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-w1", poll=0).run()
    merged = merge_shard_results(broker.collect())
    return outcomes_bytes(merged)


def run_store_broker(seed: int, trials: int, setting_keys: Sequence[str],
                     task_ids: Sequence[str], shard_count: int,
                     work_dir: Path) -> bytes:
    plan = plan_shards(shard_count, seed=seed, trials=trials,
                       setting_keys=setting_keys, task_ids=task_ids)
    broker = ObjectStoreBroker(FileSystemObjectStore(work_dir / "store"))
    broker.submit(plan)
    cache_dir = work_dir / "store-cache"
    # Same two-worker shape as run_broker, with heartbeats at their default
    # (lease_ttl / 3) so the background renewal thread rides along.
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-s0", poll=0, max_manifests=1).run()
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-s1", poll=0).run()
    merged = merge_shard_results(broker.collect())
    return outcomes_bytes(merged)


def hostile_fault_schedule(seed: int = 8) -> FaultSchedule:
    """The canonical chaos-smoke adversary: transient error bursts on every
    store operation.  Latency/CAS-loss/truncation injection are covered by
    dedicated conformance clauses; this schedule is the one the equivalence
    guarantee is proven under (and the one CI pins to JSON)."""
    spec = FaultSpec(error_rate=0.15, error_burst=2)
    return FaultSchedule(seed=seed, ops={
        op: spec for op in ("put_if_absent", "put_if_match", "get",
                            "list_prefix", "delete")})


def run_chaos_store_broker(seed: int, trials: int,
                           setting_keys: Sequence[str],
                           task_ids: Sequence[str], shard_count: int,
                           work_dir: Path,
                           schedule: FaultSchedule = None) -> bytes:
    """The ``store-broker`` path with a hostile :class:`FaultSchedule`
    raining on the object store: the broker's bounded retries must absorb
    every injected transient, so the merged export stays byte-identical to
    serial — the chaos-conformance form of the equivalence guarantee."""
    if schedule is None:
        schedule = hostile_fault_schedule()
    plan = plan_shards(shard_count, seed=seed, trials=trials,
                       setting_keys=setting_keys, task_ids=task_ids)
    store = FaultyObjectStore(FileSystemObjectStore(work_dir / "store"),
                              schedule, sleep=lambda _delay: None)
    broker = ObjectStoreBroker(store, retry=RetryPolicy(
        attempts=32, backoff_base_s=0.0, sleep=lambda _delay: None))
    broker.submit(plan)
    cache_dir = work_dir / "chaos-cache"
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-c0", poll=0, max_manifests=1).run()
    ShardWorker(broker, ManifestExecutor(cache_dir=cache_dir),
                worker_id="equivalence-c1", poll=0).run()
    assert store.injected.snapshot()["errors"] > 0, (
        "the hostile schedule injected nothing — the chaos run proved "
        "nothing beyond the plain store-broker path")
    merged = merge_shard_results(broker.collect())
    return outcomes_bytes(merged)


def run_multi_plan_broker(seeds: Sequence[int], trials: int,
                          setting_keys: Sequence[str],
                          task_ids: Sequence[str], shard_count: int,
                          work_dir: Path) -> Dict[str, bytes]:
    """PR 7's multi-tenant path: one broker, one worker, several plans.

    Every seed becomes its own named plan (``seed-<n>``) on a single
    :class:`~repro.bench.transport.LocalDirBroker`; one non-daemon worker
    drains the whole broker across plan namespaces in fair-share order,
    then each plan is collected by name.  Returns ``{plan_name: bytes}``
    so tests can compare each export against the serial run of the same
    seed — proving plans sharing a broker (and a worker, and a cache)
    stay bit-identical to plans run alone.
    """
    work_dir = Path(work_dir)
    broker = LocalDirBroker(work_dir / "broker")
    for seed in seeds:
        broker.submit(plan_shards(shard_count, seed=seed, trials=trials,
                                  setting_keys=setting_keys,
                                  task_ids=task_ids),
                      name=f"seed-{seed}")
    worker = ShardWorker(broker, ManifestExecutor(
        cache_dir=work_dir / "multi-cache"),
        worker_id="equivalence-multi", poll=0)
    worker.run()
    assert set(worker.results_by_plan) == {f"seed-{seed}" for seed in seeds}
    return {name: outcomes_bytes(merge_shard_results(broker.collect(name)))
            for name in (f"seed-{seed}" for seed in seeds)}


def prime_cache_with_incremental_models(cache_dir,
                                        task_ids=DEFAULT_TASKS) -> dict:
    """Pre-populate an :class:`ArtifactCache` through the incremental
    (replay + splice) pipeline for every application the tasks touch.

    Each app is fully ripped once on a throwaway instance (recording a
    replay trace), then a *fresh* instance of the same build is ripped
    incrementally against that model — the model-transfer case: a pristine
    change log means "unchanged since build", so the trace replays with an
    empty dirty set.  The spliced graph is rebuilt into artefacts and
    stored under the same version-aware key the engine's ``load_or_build``
    computes, so execution paths warmed from this cache serve models that
    went through the event-driven replay pipeline.  Byte-identical
    downstream exports then prove incremental models indistinguishable
    from scratch-ripped ones on every execution path.

    Apps whose exploration perturbs their own state (PowerPoint's context
    setup inserts shapes) make the replay fall back — the ripper detects
    the divergence and re-rips fully; for those the scratch model is
    stored instead, exactly what any cold path would build.

    Returns ``{app_name: "incremental" | "full"}``.
    """
    config = DMIConfig()
    cache = ArtifactCache(cache_dir, config)
    primed = {}
    for app_name in dict.fromkeys(task_by_id(t).app for t in task_ids):
        recorder = GuiRipper(app_factory(app_name)(), config=config.ripper)
        scratch = recorder.rip()
        replayer = GuiRipper(app_factory(app_name)(), config=config.ripper)
        spliced = replayer.rip_incremental(scratch, recorder.trace)
        if replayer.report.mode == "incremental":
            cache.store(app_name, rebuild_offline_artifacts(
                spliced, config, rip_report=replayer.report))
        else:
            cache.store(app_name, rebuild_offline_artifacts(
                scratch, config, rip_report=recorder.report))
        primed[app_name] = replayer.report.mode
    return primed


def run_all_paths_with_telemetry(
        seed: int, trials: int, setting_keys: Sequence[str],
        task_ids: Sequence[str], shard_count: int,
        work_dir: Path) -> Dict[str, Tuple[bytes, AggregatingSink]]:
    """Execute the grid through all five paths, each under a fresh
    :class:`AggregatingSink` installed as the process default; returns
    ``(export bytes, sink)`` per path."""
    work_dir = Path(work_dir)
    paths: Dict[str, Callable[[], bytes]] = {
        "serial": lambda: run_serial(seed, trials, setting_keys, task_ids),
        "parallel": lambda: run_parallel(seed, trials, setting_keys,
                                         task_ids, work_dir / "parallel"),
        "file-shards": lambda: run_file_shards(
            seed, trials, setting_keys, task_ids, shard_count,
            work_dir / "file-shards"),
        "broker": lambda: run_broker(seed, trials, setting_keys, task_ids,
                                     shard_count, work_dir / "broker"),
        "store-broker": lambda: run_store_broker(
            seed, trials, setting_keys, task_ids, shard_count,
            work_dir / "store-broker"),
    }
    out: Dict[str, Tuple[bytes, AggregatingSink]] = {}
    for name, thunk in paths.items():
        with use_sink(AggregatingSink()) as sink:
            out[name] = (thunk(), sink)
    return out


def run_all_paths(seed: int, trials: int, setting_keys: Sequence[str],
                  task_ids: Sequence[str], shard_count: int,
                  work_dir: Path) -> Dict[str, bytes]:
    """Execute the grid through all five paths; one bytes blob per path."""
    return {name: blob for name, (blob, _) in
            run_all_paths_with_telemetry(seed, trials, setting_keys,
                                         task_ids, shard_count,
                                         work_dir).items()}


def assert_telemetry_parity(sinks: Dict[str, AggregatingSink],
                            expected_trials: int) -> None:
    """Every path reported the same trial counts and simulated totals.

    Real timings (``trial_seconds``, rip/build phases) are path-specific
    and not compared; the deterministic aggregates — how many trials ran,
    and their total simulated wall clock / plan / act — must agree
    (tolerance: float summation order differs between completion orders).
    """
    reference = sinks["serial"]
    expected_wall = reference.timer("trial_wall_s").total
    for name, sink in sinks.items():
        for counter in ("trial_started", "trial_finished"):
            assert sink.count(counter) == expected_trials, (
                f"path {name!r} reported {sink.count(counter)} "
                f"{counter} events; expected {expected_trials}")
        for timer_name in ("trial_wall_s", "phase_plan", "phase_act"):
            timer = sink.timer(timer_name)
            assert timer is not None and timer.count == expected_trials, (
                f"path {name!r} is missing {timer_name} observations")
        total = sink.timer("trial_wall_s").total
        assert math.isclose(total, expected_wall, rel_tol=1e-9), (
            f"path {name!r} total simulated wall clock {total} diverged "
            f"from serial's {expected_wall}")


def assert_paths_bit_identical(seed: int, trials: int,
                               setting_keys: Sequence[str],
                               task_ids: Sequence[str], shard_count: int,
                               work_dir: Path) -> bytes:
    """Assert all five exports are byte-identical (and their telemetry
    trial aggregates agree); returns the reference bytes."""
    exports = run_all_paths_with_telemetry(seed, trials, setting_keys,
                                           task_ids, shard_count, work_dir)
    reference = exports["serial"][0]
    for name, (blob, _) in exports.items():
        assert blob == reference, (
            f"execution path {name!r} diverged from serial for seed={seed}, "
            f"shards={shard_count} ({len(blob)} vs {len(reference)} bytes)")
    assert_telemetry_parity(
        {name: sink for name, (_, sink) in exports.items()},
        expected_trials=trials * len(setting_keys) * len(task_ids))
    return reference
