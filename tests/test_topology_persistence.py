"""Tests for navigation-model persistence (reuse across machines, §5.2)."""

import json

import pytest

from repro.apps import PowerPointApp
from repro.dmi.interface import DMI, OfflineArtifacts
from repro.topology.core import extract_core
from repro.topology.forest import build_forest
from repro.topology.persistence import (
    FORMAT_VERSION,
    load_ung,
    save_ung,
    ung_from_dict,
    ung_to_dict,
)


def test_ung_round_trips_through_dict(ppt_artifacts):
    ung = ppt_artifacts.ung
    restored = ung_from_dict(ung_to_dict(ung))
    assert restored.app_name == ung.app_name
    assert restored.node_count() == ung.node_count()
    assert restored.edge_count() == ung.edge_count()
    assert set(restored.nodes) == set(ung.nodes)
    assert sorted(restored.edges()) == sorted(ung.edges())
    sample = next(iter(ung.nodes.values()))
    assert restored.nodes[sample.node_id].control_type == sample.control_type


def test_ung_round_trips_through_json_file(tmp_path, ppt_artifacts):
    path = save_ung(ppt_artifacts.ung, tmp_path / "models" / "ppt.json",
                    report=ppt_artifacts.rip_report)
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["format_version"] == FORMAT_VERSION
    assert payload["rip_report"]["app_name"] == "PowerPoint"
    restored = load_ung(path)
    assert restored.node_count() == ppt_artifacts.ung.node_count()


def test_unknown_format_version_is_rejected(ppt_artifacts):
    payload = ung_to_dict(ppt_artifacts.ung)
    payload["format_version"] = 999
    with pytest.raises(ValueError):
        ung_from_dict(payload)


def test_loaded_model_rebuilds_forest_and_drives_dmi(tmp_path, ppt_artifacts):
    """The 'other machine' workflow: load JSON, rebuild forest + core, run a task."""
    path = save_ung(ppt_artifacts.ung, tmp_path / "ppt.json")
    ung = load_ung(path)
    forest = build_forest(ung)
    core = extract_core(forest)
    artifacts = OfflineArtifacts(ung=ung, forest=forest, core=core,
                                 rip_report=ppt_artifacts.rip_report)
    app = PowerPointApp()
    dmi = DMI(app, artifacts)
    blue = [n for n in forest.find_by_name("Blue", leaves_only=True)
            if "Fill Color" in " > ".join(p.name for p in n.path_from_root())][0]
    apply_all = [n for n in forest.find_by_name("Apply to All", leaves_only=True)
                 if "Format Background" in " > ".join(p.name for p in n.path_from_root())][0]
    result = dmi.visit([{"id": blue.node_id}, {"id": apply_all.node_id}])
    assert result.ok
    assert all(s.background.color == "Blue" for s in app.presentation.slides)
