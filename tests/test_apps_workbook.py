"""Tests for the Excel-like workbook model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.apps.workbook import (
    Cell,
    CellFormat,
    ConditionalFormatRule,
    Workbook,
    Worksheet,
    column_index_to_letter,
    column_letter_to_index,
    parse_a1,
    parse_range,
    sample_sales_workbook,
    to_a1,
)


# ----------------------------------------------------------------------
# reference arithmetic
# ----------------------------------------------------------------------
def test_column_letter_conversions():
    assert column_letter_to_index("A") == 0
    assert column_letter_to_index("Z") == 25
    assert column_letter_to_index("AA") == 26
    assert column_index_to_letter(27) == "AB"
    with pytest.raises(ValueError):
        column_letter_to_index("A1")
    with pytest.raises(ValueError):
        column_index_to_letter(-1)


def test_parse_a1_and_round_trip():
    assert parse_a1("B10") == (9, 1)
    assert to_a1(9, 1) == "B10"
    with pytest.raises(ValueError):
        parse_a1("10B")


def test_parse_range_expands_rectangles():
    cells = parse_range("A1:B2")
    assert set(cells) == {(0, 0), (0, 1), (1, 0), (1, 1)}
    assert parse_range("C3") == [(2, 2)]
    # reversed corners still work
    assert set(parse_range("B2:A1")) == {(0, 0), (0, 1), (1, 0), (1, 1)}


@given(st.integers(min_value=0, max_value=500))
def test_column_letter_round_trip(index):
    assert column_letter_to_index(column_index_to_letter(index)) == index


@given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=80))
def test_a1_round_trip(row, column):
    assert parse_a1(to_a1(row, column)) == (row, column)


# ----------------------------------------------------------------------
# worksheet basics
# ----------------------------------------------------------------------
def test_set_and_get_values_with_coercion():
    sheet = Worksheet("S")
    sheet.set_value("A1", "12")
    sheet.set_value("A2", "text")
    sheet.set_value("A3", "")
    assert sheet.get_value("A1") == 12.0
    assert sheet.get_value("A2") == "text"
    assert sheet.get_value("A3") is None
    assert sheet.get_value("Z99") is None


def test_cell_bounds_checked():
    sheet = Worksheet("S", rows=5, columns=5)
    with pytest.raises(IndexError):
        sheet.cell_at(5, 0)


def test_used_range():
    sheet = Worksheet("S")
    assert sheet.used_range() is None
    sheet.set_value("B2", 1)
    sheet.set_value("D5", 2)
    assert sheet.used_range() == "B2:D5"


def test_display_value_formats():
    cell = Cell(value=1234.5, format=CellFormat(number_format="Currency"))
    assert cell.display_value() == "$1,234.50"
    cell.format.number_format = "Percentage"
    assert cell.display_value() == "123450.00%"
    assert Cell(value=None).display_value() == ""
    assert Cell(value=7.0).display_value() == "7"


# ----------------------------------------------------------------------
# formulas
# ----------------------------------------------------------------------
def test_sum_average_min_max_count():
    sheet = Worksheet("S")
    for row, value in enumerate((10, 20, 30), start=1):
        sheet.set_value(f"A{row}", value)
    assert sheet.evaluate_formula("=SUM(A1:A3)") == 60.0
    assert sheet.evaluate_formula("=AVERAGE(A1:A3)") == 20.0
    assert sheet.evaluate_formula("=MIN(A1:A3)") == 10.0
    assert sheet.evaluate_formula("=MAX(A1:A3)") == 30.0
    assert sheet.evaluate_formula("=COUNT(A1:A4)") == 3.0


def test_arithmetic_formulas_and_references():
    sheet = Worksheet("S")
    sheet.set_value("A1", 6)
    sheet.set_value("A2", 7)
    sheet.set_value("A3", "=A1*A2")
    assert sheet.get_value("A3") == 42.0
    sheet.set_value("A4", "=(A1+A2)/2")
    assert sheet.get_value("A4") == 6.5


def test_formula_with_text_reference_raises():
    sheet = Worksheet("S")
    sheet.set_value("A1", "abc")
    with pytest.raises(ValueError):
        sheet.evaluate_formula("=A1*2")


def test_formula_rejects_unsupported_expressions():
    sheet = Worksheet("S")
    with pytest.raises(ValueError):
        sheet.evaluate_formula("=__import__('os')")


def test_division_by_zero_yields_nan():
    sheet = Worksheet("S")
    sheet.set_value("A1", 1)
    sheet.set_value("A2", 0)
    assert math.isnan(sheet.evaluate_formula("=A1/A2"))


def test_recalculate_updates_formula_cells():
    sheet = Worksheet("S")
    sheet.set_value("A1", 2)
    sheet.set_value("A2", "=A1*10")
    sheet.set_value("A1", 5)
    sheet.recalculate()
    assert sheet.get_value("A2") == 50.0


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20))
def test_sum_formula_matches_python_sum(values):
    sheet = Worksheet("S", rows=len(values) + 2)
    for row, value in enumerate(values, start=1):
        sheet.set_value(f"A{row}", value)
    result = sheet.evaluate_formula(f"=SUM(A1:A{len(values)})")
    assert result == pytest.approx(float(sum(values)))


# ----------------------------------------------------------------------
# selection, formatting, conditional formats
# ----------------------------------------------------------------------
def test_selection_and_format_application():
    sheet = Worksheet("S")
    sheet.select_range("A1:B2")
    assert len(sheet.selected_cells()) == 4
    assert sheet.selected_references() == ["A1", "A2", "B1", "B2"] or \
        set(sheet.selected_references()) == {"A1", "A2", "B1", "B2"}
    count = sheet.apply_format_to_selection(bold=True, fill_color="Gold")
    assert count == 4
    assert sheet.cell("B2").format.bold
    with pytest.raises(AttributeError):
        sheet.apply_format_to_selection(bogus=True)


def test_conditional_format_rules_and_fill_resolution():
    sheet = Worksheet("S")
    sheet.set_value("E2", 100000)
    sheet.set_value("E3", 10)
    rule = ConditionalFormatRule(range_ref="E2:E3", operator="greater_than",
                                 threshold=50000, fill_color="Light Red")
    sheet.add_conditional_format(rule)
    assert sheet.conditional_fill_for("E2") == "Light Red"
    assert sheet.conditional_fill_for("E3") is None
    assert sheet.conditional_fill_for("A1") is None


def test_conditional_rule_operators():
    rule_between = ConditionalFormatRule(range_ref="A1", operator="between",
                                         threshold=10, threshold_upper=20)
    assert rule_between.matches(15)
    assert not rule_between.matches(25)
    rule_eq = ConditionalFormatRule(range_ref="A1", operator="equal_to", threshold=0)
    assert rule_eq.matches(None)       # blank cells match 0 (paper failure example)
    rule_lt = ConditionalFormatRule(range_ref="A1", operator="less_than", threshold=5)
    assert rule_lt.matches(1) and not rule_lt.matches(9)
    with pytest.raises(ValueError):
        ConditionalFormatRule(range_ref="A1", operator="weird").matches(1)


# ----------------------------------------------------------------------
# sorting, charts, structure
# ----------------------------------------------------------------------
def test_sort_range_with_header_and_direction():
    sheet = Worksheet("S")
    data = [("Region", "Units"), ("West", 3), ("East", 1), ("North", 2)]
    for r, row in enumerate(data, start=1):
        sheet.set_value(f"A{r}", row[0])
        sheet.set_value(f"B{r}", row[1])
    sheet.sort_range("A1:B4", key_column=0, ascending=True, has_header=True)
    assert [sheet.get_value(f"A{r}") for r in range(2, 5)] == ["East", "North", "West"]
    sheet.sort_range("A2:B4", key_column=1, ascending=False)
    assert [sheet.get_value(f"B{r}") for r in range(2, 5)] == [3.0, 2.0, 1.0]


def test_sort_places_none_last():
    sheet = Worksheet("S")
    sheet.set_value("A1", "b")
    sheet.set_value("A3", "a")      # A2 left empty
    sheet.sort_range("A1:A3", key_column=0, ascending=True)
    assert sheet.get_value("A1") == "a"
    assert sheet.get_value("A3") is None


def test_charts_filters_freeze_and_sizing():
    sheet = Worksheet("S")
    chart = sheet.insert_chart("Clustered Column", "A1:B5", title="Sales")
    assert sheet.charts == [chart]
    sheet.set_filter(0, "enabled")
    assert sheet.filters[0] == "enabled"
    sheet.freeze_panes(1, 2)
    assert (sheet.frozen_rows, sheet.frozen_columns) == (1, 2)
    sheet.hide_column("C")
    assert 2 in sheet.hidden_columns
    sheet.set_column_width("B", 20)
    sheet.set_row_height(3, 30)
    assert sheet.column_widths[1] == 20 and sheet.row_heights[3] == 30


# ----------------------------------------------------------------------
# workbook
# ----------------------------------------------------------------------
def test_workbook_sheet_management():
    workbook = Workbook(sheet_names=("One",))
    two = workbook.add_sheet("Two")
    assert workbook.sheet("Two") is two
    with pytest.raises(ValueError):
        workbook.add_sheet("Two")
    workbook.activate_sheet("Two")
    assert workbook.active_sheet is two
    with pytest.raises(KeyError):
        workbook.activate_sheet("Three")
    with pytest.raises(KeyError):
        workbook.sheet("Three")


def test_workbook_save_and_dirty_flag():
    workbook = Workbook()
    workbook.mark_dirty()
    assert not workbook.saved
    workbook.save(file_format="csv")
    assert workbook.saved and workbook.file_format == "csv" and workbook.save_count == 1


def test_sample_sales_workbook_revenue_formulas():
    workbook = sample_sales_workbook()
    sheet = workbook.active_sheet
    assert sheet.get_value("E2") == pytest.approx(120 * 950.0)
    assert sheet.get_value("A1") == "Region"
    # Highest revenue row is East/Laptop at B7 (used by the observation task).
    revenues = {f"B{r}": sheet.get_value(f"E{r}") for r in range(2, 10)}
    assert max(revenues, key=revenues.get) == "B7"
