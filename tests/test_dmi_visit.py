"""Tests for the visit executor: access declaration, filtering, robustness."""

import pytest

from repro.dmi.errors import ExecutionStatus
from repro.dmi.visit import VisitCommand, VisitExecutor
from repro.dmi.interface import DMI


# ----------------------------------------------------------------------
# command parsing
# ----------------------------------------------------------------------
def test_parse_access_command():
    command = VisitCommand.parse({"id": 7})
    assert command.kind == "access" and command.node_id == 7


def test_parse_access_with_entry_ref_and_text():
    command = VisitCommand.parse({"id": "9", "entry_ref_id": ["3"], "text": "hello"})
    assert command.kind == "access_input"
    assert command.entry_ref_ids == [3]
    assert command.text == "hello"


def test_parse_shortcut_and_further_query():
    assert VisitCommand.parse({"shortcut_key": "ctrl+s"}).kind == "shortcut"
    query = VisitCommand.parse({"further_query": -1})
    assert query.kind == "further_query" and query.query_ids == [-1]


def test_parse_unknown_command_raises():
    with pytest.raises(ValueError):
        VisitCommand.parse({"bogus": 1})


# ----------------------------------------------------------------------
# execution against the MiniApp
# ----------------------------------------------------------------------
def find_leaf(dmi: DMI, name: str, scope: str = ""):
    nodes = [n for n in dmi.forest.find_by_name(name, leaves_only=True)]
    if scope:
        nodes = [n for n in nodes
                 if scope.lower() in " > ".join(p.name for p in n.path_from_root()).lower()]
    return nodes[0]


def test_visit_navigates_and_clicks_leaf(mini_dmi):
    bold = find_leaf(mini_dmi, "Bold")
    result = mini_dmi.visit([{"id": bold.node_id}])
    assert result.ok and result.executed == 1
    assert "bold" in mini_dmi.app.state_log


def test_visit_resolves_path_dependent_color_semantics(mini_dmi):
    blue_font = find_leaf(mini_dmi, "Blue", scope="Font Color")
    blue_page = find_leaf(mini_dmi, "Blue", scope="Page Color")
    assert blue_font.node_id != blue_page.node_id
    mini_dmi.visit([{"id": blue_font.node_id}])
    assert mini_dmi.app.font_color == "Blue"
    assert mini_dmi.app.page_color == "White"
    mini_dmi.visit([{"id": blue_page.node_id}])
    assert mini_dmi.app.page_color == "Blue"


def test_visit_batches_multiple_commands_in_one_call(mini_dmi):
    blue = find_leaf(mini_dmi, "Blue", scope="Font Color")
    bold = find_leaf(mini_dmi, "Bold")
    result = mini_dmi.visit([{"id": blue.node_id}, {"id": bold.node_id}])
    assert result.executed == 2
    assert mini_dmi.app.font_color == "Blue" and "bold" in mini_dmi.app.state_log


def test_visit_access_and_input_text_with_shortcut_commit(mini_dmi):
    field = find_leaf(mini_dmi, "Name Field")
    result = mini_dmi.visit([
        {"id": field.node_id, "text": "quarterly.docx"},
        {"shortcut_key": "enter"},
    ])
    assert result.ok
    assert mini_dmi.app.saved_name == "quarterly.docx"


def test_visit_navigates_into_dialogs(mini_dmi):
    checkbox = find_leaf(mini_dmi, "Enable feature")
    result = mini_dmi.visit([{"id": checkbox.node_id}])
    assert result.ok
    assert ("feature", True) in mini_dmi.app.state_log
    # The dialog the executor had to open is still the top window.
    assert mini_dmi.app.top_window().name == "Settings"


def test_visit_filters_navigation_nodes_and_following_shortcuts(mini_dmi):
    navigation = [n for n in mini_dmi.forest.find_by_name("Font Color") if not n.is_leaf][0]
    bold = find_leaf(mini_dmi, "Bold")
    result = mini_dmi.visit([
        {"id": navigation.node_id},
        {"shortcut_key": "enter"},
        {"id": bold.node_id},
    ])
    assert len(result.filtered) == 2
    assert result.executed == 1
    statuses = [f.status for f in result.feedback]
    assert ExecutionStatus.FILTERED in statuses


def test_visit_rejects_mixed_further_query(mini_dmi):
    bold = find_leaf(mini_dmi, "Bold")
    result = mini_dmi.visit([{"further_query": [1]}, {"id": bold.node_id}])
    assert not result.ok
    assert result.executed == 0


def test_visit_pure_further_query_returns_topology(mini_dmi):
    result = mini_dmi.visit([{"further_query": [-1]}])
    assert result.ok
    assert result.further_query_ids == [-1]


def test_visit_unknown_node_id_gives_structured_error(mini_dmi):
    result = mini_dmi.visit([{"id": 10**6}])
    assert not result.ok
    error = result.errors()[0]
    assert "unknown topology node" in error.message
    assert error.suggestions


def test_visit_reports_disabled_controls(mini_dmi):
    bold_node = find_leaf(mini_dmi, "Bold")
    element = mini_dmi.app.window.find(automation_id="Mini.Bold")
    element.is_enabled = False
    result = mini_dmi.visit([{"id": bold_node.node_id}])
    assert not result.ok
    assert "disabled" in result.errors()[0].message


def test_visit_fuzzy_matches_renamed_controls(mini_dmi):
    bold_node = find_leaf(mini_dmi, "Bold")
    element = mini_dmi.app.window.find(automation_id="Mini.Bold")
    element.name = "Bold Text"          # UI renamed since modeling
    result = mini_dmi.visit([{"id": bold_node.node_id}])
    assert result.ok
    assert "bold" in mini_dmi.app.state_log


def test_visit_closes_unrelated_dialog_to_reach_main_window_target(mini_dmi):
    # Open the settings dialog, then ask for a main-window control: the
    # executor should close the dialog (OK > Close > Cancel) and proceed.
    mini_dmi.app.window.find(automation_id="Mini.OpenSettings").activate()
    assert mini_dmi.app.open_dialogs()
    bold = find_leaf(mini_dmi, "Bold")
    result = mini_dmi.visit([{"id": bold.node_id}])
    assert result.ok
    assert not mini_dmi.app.open_dialogs()


def test_visit_executor_counts_actions(mini_dmi):
    blue = find_leaf(mini_dmi, "Blue", scope="Font Color")
    result = mini_dmi.visit([{"id": blue.node_id}])
    assert result.actions_delivered >= 2     # expand dropdown + click cell


# ----------------------------------------------------------------------
# on a real application: the paper's Task 1
# ----------------------------------------------------------------------
def test_visit_completes_paper_task1_on_powerpoint(ppt_dmi):
    forest = ppt_dmi.forest
    solid = find_leaf(ppt_dmi, "Solid fill", scope="Format Background")
    blue = find_leaf(ppt_dmi, "Blue", scope="Fill Color")
    apply_all = find_leaf(ppt_dmi, "Apply to All", scope="Format Background")
    result = ppt_dmi.visit([{"id": solid.node_id}, {"id": blue.node_id},
                            {"id": apply_all.node_id}])
    assert result.ok and result.executed == 3
    assert all(s.background.color == "Blue" for s in ppt_dmi.app.presentation.slides)
