"""Tests for sharded manifest execution: plan / run / merge.

The load-bearing property is merge equivalence: a grid partitioned into N
manifests, executed shard-by-shard (in any order, on any machine) and merged
must be bit-identical — per-trial results *and* aggregate metrics — to the
SerialExecutor running the same grid with the same seed.
"""

import dataclasses
import json

import pytest

from repro.bench.engine import expand_trial_specs
from repro.bench.metrics import aggregate, one_shot_rate
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    DEFAULT_SEED,
    setting_by_key,
)
from repro.bench.shard import (
    MANIFEST_FORMAT_VERSION,
    ManifestExecutor,
    ShardError,
    ShardManifest,
    ShardPlan,
    ShardResults,
    merge_shard_results,
    plan_shards,
)
from repro.bench.tasks import task_by_id
from repro.dmi.cache import config_fingerprint
from repro.dmi.interface import DMIConfig
from repro.ripping.ripper import RipperConfig

TASKS = ("ppt-01-blue-background", "word-02-landscape")
SETTINGS = ("gui-gpt5-medium", "dmi-gpt5-medium")


def small_plan(shards=3, seed=DEFAULT_SEED, trials=2, **kwargs):
    return plan_shards(shards, seed=seed, trials=trials,
                       setting_keys=SETTINGS, task_ids=TASKS, **kwargs)


def run_plan(plan, **executor_kwargs):
    executor = ManifestExecutor(**executor_kwargs)
    return [executor.run(manifest) for manifest in plan.manifests]


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def test_plan_partitions_the_full_grid_without_overlap():
    plan = small_plan(shards=3)
    canonical = expand_trial_specs(DEFAULT_SEED, 2, SETTINGS, TASKS)
    assert plan.shard_count == 3
    scattered = plan.specs()
    assert sorted(scattered, key=lambda s: (s.setting_key, s.task_id, s.trial)) \
        == sorted(canonical, key=lambda s: (s.setting_key, s.task_id, s.trial))
    assert len(set(scattered)) == len(canonical)  # no spec claimed twice
    # Round-robin keeps shard sizes balanced to within one spec.
    sizes = [len(m.specs) for m in plan.manifests]
    assert max(sizes) - min(sizes) <= 1


def test_plan_embeds_identity_in_every_manifest():
    plan = small_plan(shards=2, seed=42, trials=1)
    fingerprint = config_fingerprint(DMIConfig())
    for index, manifest in enumerate(plan.manifests):
        assert manifest.shard_index == index
        assert manifest.shard_count == 2
        assert manifest.seed == 42
        assert manifest.trials == 1
        assert manifest.fingerprint == fingerprint
        assert manifest.setting_keys == SETTINGS
        assert manifest.task_ids == TASKS


def test_plan_rejects_degenerate_shapes():
    with pytest.raises(ShardError, match=">= 1"):
        small_plan(shards=0)
    with pytest.raises(ShardError, match="fewer shards"):
        small_plan(shards=99, trials=1)
    with pytest.raises(ShardError, match="trials"):
        small_plan(shards=1, trials=0)


def test_manifest_round_trips_through_file(tmp_path):
    plan = small_plan(shards=2)
    paths = plan.write(tmp_path / "shards")
    assert [p.name for p in paths] == ["shard-000-of-002.json",
                                      "shard-001-of-002.json"]
    for manifest, path in zip(plan.manifests, paths):
        assert ShardManifest.load(path) == manifest


def test_manifest_load_rejects_bad_files(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ShardError, match="cannot read"):
        ShardManifest.load(missing)
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    with pytest.raises(ShardError, match="not valid JSON"):
        ShardManifest.load(garbled)
    wrong_kind = tmp_path / "kind.json"
    wrong_kind.write_text(json.dumps({"kind": "something-else",
                                      "format_version": MANIFEST_FORMAT_VERSION}))
    with pytest.raises(ShardError, match="expected a 'repro-shard-manifest'"):
        ShardManifest.load(wrong_kind)
    future = tmp_path / "future.json"
    payload = small_plan(shards=1).manifests[0].as_dict()
    payload["format_version"] = MANIFEST_FORMAT_VERSION + 1
    future.write_text(json.dumps(payload))
    with pytest.raises(ShardError, match="format version"):
        ShardManifest.load(future)


# ----------------------------------------------------------------------
# executing one manifest
# ----------------------------------------------------------------------
def test_manifest_executor_refuses_foreign_fingerprint():
    plan = small_plan(shards=1, trials=1,
                      dmi_config=DMIConfig(ripper=RipperConfig(max_depth=2)))
    with pytest.raises(ShardError, match="DMI configuration"):
        ManifestExecutor().run(plan.manifests[0])


def test_manifest_executor_refuses_unknown_registry_entries():
    manifest = small_plan(shards=1, trials=1).manifests[0]
    bogus = dataclasses.replace(manifest, task_ids=("no-such-task",)
                                + manifest.task_ids)
    with pytest.raises(ShardError, match="registry"):
        ManifestExecutor().run(bogus)
    with pytest.raises(ShardError, match="jobs"):
        ManifestExecutor(jobs=0)


def test_manifest_executor_uses_warm_cache(tmp_path):
    plan = small_plan(shards=1, trials=1)
    ManifestExecutor(cache_dir=tmp_path).run(plan.manifests[0])
    from repro.ripping.ripper import GuiRipper

    original = GuiRipper.rip

    def explode(self):
        raise AssertionError("warm cache must not rip the GUI")

    GuiRipper.rip = explode
    try:
        again = ManifestExecutor(cache_dir=tmp_path).run(plan.manifests[0])
    finally:
        GuiRipper.rip = original
    assert len(again.results) == len(plan.manifests[0].specs)


def test_shard_results_round_trip_through_file(tmp_path):
    plan = small_plan(shards=2, trials=1)
    shard = ManifestExecutor().run(plan.manifests[0])
    path = shard.save(tmp_path / "out" / "r0.json")
    loaded = ShardResults.load(path)
    assert loaded.manifest == shard.manifest
    assert [r.as_dict() for r in loaded.results] \
        == [r.as_dict() for r in shard.results]


def test_shard_results_load_rejects_misaligned_results(tmp_path):
    plan = small_plan(shards=1, trials=1)
    shard = ManifestExecutor().run(plan.manifests[0])
    payload = shard.as_dict()
    # Swap two results of different tasks: lengths still match, but the
    # positional spec <-> result pairing is broken.
    first = next(i for i, s in enumerate(payload["manifest"]["specs"])
                 if s["task_id"] == TASKS[0])
    second = next(i for i, s in enumerate(payload["manifest"]["specs"])
                  if s["task_id"] == TASKS[1])
    payload["results"][first], payload["results"][second] = \
        payload["results"][second], payload["results"][first]
    path = tmp_path / "swapped.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ShardError, match="misaligned"):
        ShardResults.load(path)


def test_shard_results_load_rejects_cross_setting_swaps(tmp_path):
    """Same task, different setting: task_id alone can't catch the swap, the
    interface/model cross-check must."""
    plan = small_plan(shards=1, trials=1)
    shard = ManifestExecutor().run(plan.manifests[0])
    payload = shard.as_dict()
    specs = payload["manifest"]["specs"]
    first = next(i for i, s in enumerate(specs)
                 if s["task_id"] == TASKS[0] and s["setting_key"] == SETTINGS[0])
    second = next(i for i, s in enumerate(specs)
                  if s["task_id"] == TASKS[0] and s["setting_key"] == SETTINGS[1])
    payload["results"][first], payload["results"][second] = \
        payload["results"][second], payload["results"][first]
    path = tmp_path / "cross-setting.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ShardError, match="misaligned"):
        ShardResults.load(path)


def test_plan_rejects_duplicate_tasks_and_settings():
    with pytest.raises(ShardError, match="duplicate task id"):
        plan_shards(2, seed=DEFAULT_SEED, trials=1, setting_keys=SETTINGS,
                    task_ids=TASKS + (TASKS[0],))
    with pytest.raises(ShardError, match="duplicate setting key"):
        plan_shards(2, seed=DEFAULT_SEED, trials=1,
                    setting_keys=SETTINGS + (SETTINGS[1],), task_ids=TASKS)


def test_merge_rejects_setting_keys_outside_the_registry():
    shards = run_plan(small_plan(shards=1, trials=1))
    alien = dataclasses.replace(shards[0].manifest,
                                setting_keys=("no-such-setting",),
                                specs=(), task_ids=())
    with pytest.raises(ShardError, match="not in this build's registry"):
        merge_shard_results([ShardResults(alien, [])])


def test_shard_results_load_rejects_truncated_results(tmp_path):
    plan = small_plan(shards=1, trials=1)
    shard = ManifestExecutor().run(plan.manifests[0])
    payload = shard.as_dict()
    payload["results"] = payload["results"][:-1]
    path = tmp_path / "truncated.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ShardError, match="specs but"):
        ShardResults.load(path)


# ----------------------------------------------------------------------
# error hardening: every load/validation ShardError names file and field
# ----------------------------------------------------------------------
def _write_manifest(tmp_path, mutate):
    payload = small_plan(shards=1, trials=1).manifests[0].as_dict()
    mutate(payload)
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(payload))
    return path


def test_manifest_errors_name_the_file_and_the_missing_field(tmp_path):
    path = _write_manifest(tmp_path, lambda p: p.pop("seed"))
    with pytest.raises(ShardError, match="missing required field 'seed'") as exc:
        ShardManifest.load(path)
    assert str(path) in str(exc.value)


def test_manifest_errors_name_the_file_and_the_mistyped_field(tmp_path):
    path = _write_manifest(tmp_path, lambda p: p.update(seed="eleven"))
    with pytest.raises(ShardError, match="field 'seed' must be an integer") as exc:
        ShardManifest.load(path)
    assert str(path) in str(exc.value)
    path = _write_manifest(tmp_path, lambda p: p.update(seed=True))
    with pytest.raises(ShardError, match="field 'seed' must be an integer"):
        ShardManifest.load(path)
    path = _write_manifest(tmp_path, lambda p: p.update(fingerprint=17))
    with pytest.raises(ShardError, match="field 'fingerprint' must be a string"):
        ShardManifest.load(path)
    path = _write_manifest(tmp_path, lambda p: p.update(task_ids="word"))
    with pytest.raises(ShardError,
                       match="field 'task_ids' must be a list of strings"):
        ShardManifest.load(path)
    path = _write_manifest(tmp_path, lambda p: p.update(setting_keys=[1, 2]))
    with pytest.raises(ShardError,
                       match="field 'setting_keys' must be a list of strings"):
        ShardManifest.load(path)
    path = _write_manifest(tmp_path, lambda p: p.update(specs={"not": "a list"}))
    with pytest.raises(ShardError, match="field 'specs' must be a list"):
        ShardManifest.load(path)


def test_manifest_errors_name_the_offending_spec_entry(tmp_path):
    def break_second_spec(payload):
        del payload["specs"][1]["seed"]

    path = _write_manifest(tmp_path, break_second_spec)
    with pytest.raises(ShardError, match=r"field 'specs\[1\]'") as exc:
        ShardManifest.load(path)
    assert str(path) in str(exc.value)
    assert "'seed'" in str(exc.value)  # the spec's missing key is surfaced


def test_header_errors_name_the_file_and_the_field(tmp_path):
    path = _write_manifest(tmp_path, lambda p: p.update(kind="bogus"))
    with pytest.raises(ShardError, match="field 'kind'") as exc:
        ShardManifest.load(path)
    assert str(path) in str(exc.value)
    path = _write_manifest(tmp_path,
                           lambda p: p.update(format_version="newest"))
    with pytest.raises(ShardError, match="field 'format_version'") as exc:
        ShardManifest.load(path)
    assert str(path) in str(exc.value)


def test_results_errors_name_the_file_and_the_offending_entry(tmp_path):
    shard = ManifestExecutor().run(small_plan(shards=1, trials=1).manifests[0])
    payload = shard.as_dict()
    payload["results"][2] = {"task_id": "ppt-01-blue-background"}  # gutted
    path = tmp_path / "results.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ShardError, match=r"field 'results\[2\]'") as exc:
        ShardResults.load(path)
    assert str(path) in str(exc.value)

    payload = shard.as_dict()
    payload["manifest"] = "not-an-object"
    path.write_text(json.dumps(payload))
    with pytest.raises(ShardError,
                       match="field 'manifest' must be a JSON object") as exc:
        ShardResults.load(path)
    assert str(path) in str(exc.value)

    payload = shard.as_dict()
    payload["results"] = "not-a-list"
    path.write_text(json.dumps(payload))
    with pytest.raises(ShardError, match="field 'results' must be a list"):
        ShardResults.load(path)


def test_nested_manifest_errors_name_the_results_file(tmp_path):
    shard = ManifestExecutor().run(small_plan(shards=1, trials=1).manifests[0])
    payload = shard.as_dict()
    del payload["manifest"]["trials"]
    path = tmp_path / "results.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ShardError,
                       match="missing required field 'trials'") as exc:
        ShardResults.load(path)
    assert str(path) in str(exc.value)
    assert "(manifest)" in str(exc.value)  # points inside the nested object


# ----------------------------------------------------------------------
# merge equivalence (the acceptance-criteria property)
# ----------------------------------------------------------------------
def test_merged_sharded_run_is_bit_identical_to_serial():
    serial = BenchmarkRunner(BenchmarkConfig(
        trials=2, seed=DEFAULT_SEED, tasks=[task_by_id(t) for t in TASKS]))
    reference = serial.run_settings([setting_by_key(k) for k in SETTINGS])

    plan = small_plan(shards=3, trials=2)
    shards = run_plan(plan)
    merged = merge_shard_results(list(reversed(shards)))  # order-independent

    assert list(merged) == list(SETTINGS)
    for key in reference:
        expected = [r.as_dict() for r in reference[key].results]
        actual = [r.as_dict() for r in merged[key].results]
        assert expected == actual
        assert aggregate(reference[key].results).as_dict() \
            == aggregate(merged[key].results).as_dict()


def test_merged_one_shot_field_agrees_with_one_shot_rate():
    plan = small_plan(shards=2, trials=1)
    merged = merge_shard_results(run_plan(plan))
    for outcome in merged.values():
        results = outcome.results
        # The per-result one_shot flag survives the process/file round trip
        # and stays consistent with its definition...
        for result in results:
            assert result.one_shot == (result.success and result.core_steps <= 1)
        # ...so the aggregate one_shot percentage equals the rate recomputed
        # from the flags alone.
        successes = [r for r in results if r.success]
        from_flags = (sum(1 for r in successes if r.one_shot) / len(successes)
                      if successes else 0.0)
        assert one_shot_rate(results) == from_flags
        assert aggregate(results).as_dict()["one_shot"] \
            == round(from_flags * 100.0, 1)


def test_merge_rejects_wrong_seed_and_wrong_fingerprint():
    shards = run_plan(small_plan(shards=2, trials=1))
    alien_seed = dataclasses.replace(shards[1].manifest, seed=DEFAULT_SEED + 1)
    with pytest.raises(ShardError, match="seed"):
        merge_shard_results([shards[0], ShardResults(alien_seed,
                                                     shards[1].results)])
    alien_print = dataclasses.replace(shards[1].manifest, fingerprint="deadbeef")
    with pytest.raises(ShardError, match="fingerprint"):
        merge_shard_results([shards[0], ShardResults(alien_print,
                                                     shards[1].results)])


def test_merge_rejects_missing_duplicate_and_empty_shards():
    shards = run_plan(small_plan(shards=2, trials=1))
    with pytest.raises(ShardError, match="no shard results"):
        merge_shard_results([])
    with pytest.raises(ShardError, match="missing results for shard"):
        merge_shard_results(shards[:1])
    with pytest.raises(ShardError, match="more than once"):
        merge_shard_results([shards[0], shards[0]])


def test_merge_duplicate_error_names_both_results_files(tmp_path):
    """PR 5 bugfix: the duplicate-shard error names the two offending
    results *files*, not just the shard index — 'shard 0 twice' is not
    actionable when ten result paths were globbed onto a command line."""
    shard = run_plan(small_plan(shards=2, trials=1))[0]
    first_path = tmp_path / "results-from-host-a.json"
    duplicate_path = tmp_path / "results-from-host-b.json"
    shard.save(first_path)
    shard.save(duplicate_path)
    loaded = [ShardResults.load(first_path), ShardResults.load(duplicate_path)]
    with pytest.raises(ShardError) as excinfo:
        merge_shard_results(loaded)
    message = str(excinfo.value)
    assert "shard 0 appears more than once" in message
    assert str(first_path) in message
    assert str(duplicate_path) in message
    # In-memory duplicates (no file behind them) degrade gracefully.
    with pytest.raises(ShardError, match="in-memory ShardResults"):
        merge_shard_results([ShardResults(shard.manifest, shard.results),
                             ShardResults(shard.manifest, shard.results)])


def test_merge_rejects_specs_outside_the_plan_grid():
    shards = run_plan(small_plan(shards=2, trials=1))
    donor = run_plan(plan_shards(1, seed=DEFAULT_SEED, trials=1,
                                 setting_keys=SETTINGS,
                                 task_ids=("excel-03-bold-header",)))[0]
    # Graft a same-identity manifest whose specs don't belong to the grid.
    grafted = dataclasses.replace(
        shards[1].manifest, specs=donor.manifest.specs)
    with pytest.raises(ShardError, match="outside the plan's grid"):
        merge_shard_results([shards[0],
                             ShardResults(grafted, donor.results)])


def test_runner_shard_plan_mirrors_its_config():
    runner = BenchmarkRunner(BenchmarkConfig(
        trials=2, seed=19, tasks=[task_by_id(t) for t in TASKS]))
    plan = runner.shard_plan([setting_by_key(k) for k in SETTINGS], 2)
    assert isinstance(plan, ShardPlan)
    assert plan.manifests[0].seed == 19
    assert plan.manifests[0].trials == 2
    assert plan.manifests[0].task_ids == TASKS
    merged = merge_shard_results(run_plan(plan))
    reference = runner.run_settings([setting_by_key(k) for k in SETTINGS])
    for key in reference:
        assert [r.as_dict() for r in reference[key].results] \
            == [r.as_dict() for r in merged[key].results]


def test_parallel_shard_run_matches_serial_shard_run(tmp_path):
    plan = small_plan(shards=2, trials=1)
    serial_shards = run_plan(plan)
    parallel_shards = run_plan(plan, jobs=2, cache_dir=tmp_path / "cache")
    for ours, theirs in zip(serial_shards, parallel_shards):
        assert [r.as_dict() for r in ours.results] \
            == [r.as_dict() for r in theirs.results]
