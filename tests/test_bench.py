"""Tests for the benchmark: tasks, checkers, metrics, failures, runner, reporting."""

import dataclasses

import pytest

from repro.agent.session import FailureRecord, InterfaceSetting, SessionResult
from repro.apps import APP_FACTORIES, ExcelApp, PowerPointApp, WordApp
from repro.bench.failures import failure_breakdown, failure_distribution, failure_share_by_cause
from repro.bench.metrics import (
    aggregate,
    normalized_core_steps,
    one_shot_rate,
    per_app_success,
    solved_task_intersection,
    success_rate,
)
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    CORE_SETTING_KEYS,
    EvaluationSetting,
    TABLE3_SETTINGS,
    setting_by_key,
)
from repro.bench import reporting
from repro.bench.tasks import all_tasks, task_by_id, tasks_for_app
from repro.llm.profiles import GPT5_MEDIUM
from repro.spec import FailureCause


# ----------------------------------------------------------------------
# task suite shape
# ----------------------------------------------------------------------
def test_suite_has_27_single_app_tasks_across_three_apps():
    tasks = all_tasks()
    assert len(tasks) == 27
    assert {len(tasks_for_app(app)) for app in ("word", "excel", "powerpoint")} == {9}
    assert len({t.task_id for t in tasks}) == 27


def test_every_task_has_checker_and_valid_metadata():
    for task in all_tasks():
        assert callable(task.checker)
        assert task.intents
        assert task.semantic_difficulty > 0
        assert task.app in APP_FACTORIES


def test_checkers_fail_on_fresh_unmodified_apps():
    for task in all_tasks():
        app = APP_FACTORIES[task.app]()
        assert not task.checker(app), f"{task.task_id} must not pass on a fresh app"


def test_task_by_id_lookup():
    assert task_by_id("ppt-01-blue-background").app == "powerpoint"
    with pytest.raises(KeyError):
        task_by_id("nope")


def test_checkers_pass_after_direct_state_manipulation():
    word = WordApp()
    word.document.set_orientation("landscape")
    assert task_by_id("word-02-landscape").checker(word)

    excel = ExcelApp()
    excel.sheet.set_value("B10", 500)
    assert task_by_id("excel-01-enter-value").checker(excel)

    ppt = PowerPointApp()
    ppt.presentation.set_background("Blue", apply_to_all=True)
    assert task_by_id("ppt-01-blue-background").checker(ppt)


def test_paper_flagship_tasks_are_present():
    tags = {tag for task in all_tasks() for tag in task.tags}
    assert "paper-task-1" in tags and "paper-task-2" in tags


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def fake_result(task_id="t1", success=True, steps=5, core=2, time_s=100.0,
                cause=None, one_core=False):
    result = SessionResult(task_id=task_id, app="word", interface=InterfaceSetting.GUI_ONLY,
                           model="gpt-5", reasoning="medium")
    result.success = success
    result.steps = steps
    result.core_steps = 1 if one_core else core
    result.wall_time_s = time_s
    if cause is not None:
        result.failure = FailureRecord(cause)
    return result


def test_success_rate_and_aggregate_use_successes_only_for_steps():
    results = [fake_result(success=True, steps=4, time_s=50),
               fake_result(success=False, steps=30, time_s=900,
                           cause=FailureCause.CONTROL_LOCALIZATION)]
    assert success_rate(results) == 0.5
    summary = aggregate(results)
    assert summary.avg_steps == 4
    assert summary.avg_time_s == 50
    assert summary.as_dict()["SR"] == 50.0


def test_one_shot_rate_counts_single_core_call_successes():
    results = [fake_result(success=True, one_core=True),
               fake_result(success=True, core=3),
               fake_result(success=False, cause=FailureCause.AMBIGUOUS_TASK)]
    assert one_shot_rate(results) == 0.5


def test_aggregate_empty_results():
    summary = aggregate([])
    assert summary.success_rate == 0.0 and summary.avg_steps == 0.0


def test_solved_intersection_and_normalized_steps():
    setting_a = [fake_result("t1", True, core=4), fake_result("t2", True, core=6)]
    setting_b = [fake_result("t1", True, core=2),
                 fake_result("t2", False, cause=FailureCause.CONTROL_LOCALIZATION)]
    by_setting = {"a": setting_a, "b": setting_b}
    assert solved_task_intersection(by_setting) == {"t1"}
    normalized = normalized_core_steps(by_setting)
    assert normalized["a"] == 4 and normalized["b"] == 2


def test_per_app_success_groups_by_application():
    results = [fake_result("w", True), fake_result("w2", False,
                                                   cause=FailureCause.AMBIGUOUS_TASK)]
    assert per_app_success(results) == {"word": 0.5}


# ----------------------------------------------------------------------
# failures
# ----------------------------------------------------------------------
def test_failure_distribution_and_breakdown():
    results = [
        fake_result(success=False, cause=FailureCause.AMBIGUOUS_TASK),
        fake_result(success=False, cause=FailureCause.CONTROL_LOCALIZATION),
        fake_result(success=False, cause=FailureCause.CONTROL_SEMANTICS),
        fake_result(success=True),
    ]
    distribution = failure_distribution(results)
    assert distribution["failures"] == 3
    assert distribution["policy"] == 2 and distribution["mechanism"] == 1
    breakdown = failure_breakdown(results)
    assert breakdown[FailureCause.AMBIGUOUS_TASK.value] == 1
    shares = failure_share_by_cause(results)
    assert pytest.approx(sum(shares.values())) == 1.0


def test_failure_distribution_with_no_failures():
    distribution = failure_distribution([fake_result(success=True)])
    assert distribution["failures"] == 0
    assert distribution["policy_share"] == 0.0
    assert failure_share_by_cause([fake_result(success=True)]) == {}


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def test_table3_settings_cover_paper_rows():
    assert len(TABLE3_SETTINGS) == 8
    interfaces = {(s.interface, s.profile.name, s.profile.reasoning) for s in TABLE3_SETTINGS}
    assert (InterfaceSetting.GUI_PLUS_DMI, "gpt-5", "medium") in interfaces
    assert (InterfaceSetting.GUI_PLUS_FOREST, "gpt-5-mini", "medium") in interfaces
    assert setting_by_key("dmi-gpt5-medium").interface.uses_dmi
    with pytest.raises(KeyError):
        setting_by_key("nope")
    assert set(CORE_SETTING_KEYS) <= {s.key for s in TABLE3_SETTINGS}


def test_runner_is_deterministic_for_same_seed():
    tasks = [task_by_id("ppt-01-blue-background"), task_by_id("word-02-landscape")]
    setting = setting_by_key("dmi-gpt5-medium")
    runner_a = BenchmarkRunner(BenchmarkConfig(trials=2, seed=5, tasks=tasks))
    runner_b = BenchmarkRunner(BenchmarkConfig(trials=2, seed=5, tasks=tasks))
    out_a = runner_a.run_setting(setting)
    out_b = runner_b.run_setting(setting)
    assert [r.success for r in out_a.results] == [r.success for r in out_b.results]
    assert [r.steps for r in out_a.results] == [r.steps for r in out_b.results]


def test_runner_produces_expected_trial_counts_and_outcome_queries():
    tasks = [task_by_id("ppt-02-scroll-to-end")]
    runner = BenchmarkRunner(BenchmarkConfig(trials=3, seed=2, tasks=tasks))
    outcome = runner.run_setting(setting_by_key("dmi-gpt5-medium"))
    assert len(outcome.results) == 3
    assert set(outcome.by_task()) == {"ppt-02-scroll-to-end"}
    assert outcome.solved_task_ids() <= {"ppt-02-scroll-to-end"}


def test_runner_reuses_offline_artifacts_across_trials():
    runner = BenchmarkRunner(BenchmarkConfig(trials=1))
    first = runner.offline_artifacts("word")
    second = runner.offline_artifacts("word")
    assert first is second
    assert set(runner.all_offline_artifacts()) == {"word", "excel", "powerpoint"}


def test_gui_vs_dmi_shape_on_a_small_subset():
    """The paper's headline shape holds even on a 4-task subset: DMI reaches
    at least the baseline's success rate with fewer core steps."""
    tasks = [task_by_id(t) for t in ("ppt-01-blue-background", "ppt-02-scroll-to-end",
                                     "word-02-landscape", "excel-03-bold-header")]
    runner = BenchmarkRunner(BenchmarkConfig(trials=3, seed=13, tasks=tasks))
    gui = runner.run_setting(setting_by_key("gui-gpt5-medium"))
    dmi = runner.run_setting(setting_by_key("dmi-gpt5-medium"))
    gui_summary = aggregate(gui.results)
    dmi_summary = aggregate(dmi.results)
    assert dmi_summary.success_rate >= gui_summary.success_rate
    assert dmi_summary.avg_core_steps < gui_summary.avg_core_steps


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_outcomes():
    tasks = [task_by_id(t) for t in ("ppt-01-blue-background", "word-02-landscape")]
    runner = BenchmarkRunner(BenchmarkConfig(trials=1, seed=3, tasks=tasks))
    keys = ("gui-gpt5-medium", "forest-gpt5-medium", "dmi-gpt5-medium")
    outcomes = {key: runner.run_setting(setting_by_key(key)) for key in keys}
    return runner, outcomes


def test_render_table3_contains_rows_and_metrics(small_outcomes):
    _, outcomes = small_outcomes
    text = reporting.render_table3(outcomes)
    assert "Interface" in text and "GUI+DMI" in text and "%" in text


def test_render_figures_and_sections(small_outcomes):
    runner, outcomes = small_outcomes
    assert "Success rate" in reporting.render_figure5a(outcomes)
    fig5b = reporting.render_figure5b(outcomes, groups=[list(outcomes)])
    assert "Normalized core steps" in fig5b
    fig6 = reporting.render_figure6(outcomes["dmi-gpt5-medium"].results,
                                    outcomes["gui-gpt5-medium"].results)
    assert "policy-level" in fig6 and "mechanism-level" in fig6
    offline = reporting.render_offline_modeling(runner.all_offline_artifacts())
    assert "UNG nodes" in offline
    one_shot = reporting.render_one_shot(outcomes, "dmi-gpt5-medium")
    assert "single core LLM call" in one_shot
    table2 = reporting.render_table2()
    assert "set_scrollbar_pos" in table2 and "ScrollPattern" in table2
    ablation = reporting.render_ablation(outcomes, [list(outcomes)])
    assert "SR" in ablation


def test_render_table1_formats_traces():
    text = reporting.render_table1(["click(A)", "click(B)"], ["visit([1, 2])"],
                                   ["drag", "drag"], ["set_scrollbar_pos(80%)"])
    assert "Task 1" in text and "visit([1, 2])" in text and "set_scrollbar_pos" in text


def test_render_token_overhead():
    text = reporting.render_token_overhead(
        {"Word": {"navigation_topology": 5000, "total": 6000}},
        {"Word": 12.0},
        {"gui": {"prompt": 1000, "total": 1200}})
    assert "Token overhead" in text and "12.0" in text


def test_interface_label_fails_with_labeled_error_on_unknown_interface():
    """Regression: a non-Table-3 interface value raised a bare KeyError."""
    from types import SimpleNamespace

    outcome = SimpleNamespace(setting=SimpleNamespace(
        key="voice-gpt5-medium",
        interface=SimpleNamespace(value="voice-only")))
    with pytest.raises(ValueError, match="no Table 3 interface label.*voice-only"):
        reporting._interface_label(outcome)


def test_render_figure5b_with_no_commonly_solved_tasks():
    """All-zero normalized steps must render (peak clamps to 1.0), with
    empty bars rather than a division error."""
    from repro.agent.session import InterfaceSetting, SessionResult
    from repro.bench.runner import RunOutcome, setting_by_key

    failed = SessionResult(task_id="t", app="word",
                           interface=InterfaceSetting.GUI_ONLY,
                           model="gpt-5", reasoning="medium", success=False)
    outcome = RunOutcome(setting=setting_by_key("gui-gpt5-medium"),
                         results=[failed])
    text = reporting.render_figure5b({"gui-gpt5-medium": outcome},
                                     groups=[["gui-gpt5-medium"]])
    assert "Normalized core steps" in text
    assert " 0.00 |" in text and "#" not in text.split("|")[-1]
