"""Tests for the Word-like document model."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.document import Document, Paragraph, TextFormat, sample_document


def small_doc():
    doc = Document(title="T")
    doc.add_paragraph("first paragraph")
    doc.add_paragraph("second paragraph here")
    doc.add_paragraph("third")
    return doc


def test_add_insert_delete_paragraphs():
    doc = small_doc()
    assert doc.paragraph_count() == 3
    doc.insert_paragraph(1, "inserted")
    assert doc.paragraphs[1].text == "inserted"
    removed = doc.delete_paragraph(0)
    assert removed.text == "first paragraph"
    assert doc.paragraph_count() == 3
    assert not doc.saved


def test_word_count_and_full_text():
    doc = small_doc()
    assert doc.word_count() == 2 + 3 + 1
    assert doc.full_text().splitlines() == ["first paragraph", "second paragraph here", "third"]


def test_selection_validation_and_selected_text():
    doc = small_doc()
    doc.select_paragraphs(1, 2)
    assert doc.selected_text() == "second paragraph here\nthird"
    with pytest.raises(IndexError):
        doc.select_paragraphs(2, 5)
    with pytest.raises(IndexError):
        doc.select_paragraphs(-1)
    doc.clear_selection()
    assert doc.selected_paragraphs() == []


def test_select_all_and_empty_document():
    doc = small_doc()
    assert doc.select_all() == (0, 2)
    empty = Document()
    assert empty.select_all() is None


def test_apply_format_to_selection_only():
    doc = small_doc()
    doc.select_paragraphs(0, 1)
    count = doc.apply_format(bold=True, color="Red")
    assert count == 2
    assert doc.paragraphs[0].format.bold and doc.paragraphs[1].format.color == "Red"
    assert not doc.paragraphs[2].format.bold
    with pytest.raises(AttributeError):
        doc.apply_format(nonexistent=1)


def test_apply_format_without_selection_is_noop():
    doc = small_doc()
    assert doc.apply_format(bold=True) == 0
    assert not doc.paragraphs[0].format.bold


def test_toggle_format_flag_word_semantics():
    doc = small_doc()
    doc.select_paragraphs(0, 1)
    doc.paragraphs[0].format.bold = True
    # Mixed selection -> everything turns on.
    doc.toggle_format_flag("bold")
    assert doc.paragraphs[0].format.bold and doc.paragraphs[1].format.bold
    # Uniformly bold -> toggling turns everything off.
    doc.toggle_format_flag("bold")
    assert not doc.paragraphs[0].format.bold and not doc.paragraphs[1].format.bold


def test_find_is_case_insensitive_by_default():
    doc = small_doc()
    hits = doc.find("PARAGRAPH")
    assert len(hits) == 2
    assert doc.find("paragraph", match_case=True) == [(0, 6), (1, 7)]
    assert doc.find("") == []


def test_replace_all_counts_and_modes():
    doc = small_doc()
    assert doc.replace_all("paragraph", "section") == 2
    assert "section" in doc.paragraphs[0].text
    assert doc.replace_all("missing", "x") == 0
    doc2 = Document()
    doc2.add_paragraph("Risk and risk")
    assert doc2.replace_all("risk", "threat", match_case=True) == 1
    assert doc2.paragraphs[0].text == "Risk and threat"


def test_orientation_margins_zoom_scroll():
    doc = small_doc()
    doc.set_orientation("landscape")
    assert doc.page_orientation == "landscape"
    with pytest.raises(ValueError):
        doc.set_orientation("diagonal")
    doc.set_margins(top=3.0, bottom=3.0)
    assert doc.margins["top"] == 3.0
    with pytest.raises(ValueError):
        doc.set_margins(middle=1.0)
    doc.set_zoom(1000)
    assert doc.zoom_percent == 500.0
    doc.scroll_to(120)
    assert doc.scroll_percent == 100.0


def test_save_resets_dirty_flag_and_counts():
    doc = small_doc()
    assert not doc.saved
    doc.save(file_format="pdf")
    assert doc.saved and doc.file_format == "pdf" and doc.save_count == 1


def test_text_provider_protocol():
    doc = small_doc()
    assert doc.get_lines() == doc.get_paragraphs()
    doc.select_range(0, 1)
    assert doc.selection == (0, 1)


def test_sample_document_shape():
    doc = sample_document()
    assert doc.paragraph_count() == 8
    assert doc.paragraphs[0].format.style == "Title"
    assert doc.summary()["words"] == doc.word_count()


def test_text_format_copy_is_independent():
    fmt = TextFormat(bold=True)
    clone = fmt.copy()
    clone.bold = False
    assert fmt.bold


# ----------------------------------------------------------------------
# property-based
# ----------------------------------------------------------------------
@given(st.lists(st.text(alphabet="abc XYZ", max_size=30), min_size=1, max_size=12),
       st.data())
def test_any_valid_selection_formats_exactly_that_range(texts, data):
    doc = Document()
    for text in texts:
        doc.add_paragraph(text)
    start = data.draw(st.integers(min_value=0, max_value=len(texts) - 1))
    end = data.draw(st.integers(min_value=start, max_value=len(texts) - 1))
    doc.select_paragraphs(start, end)
    affected = doc.apply_format(italic=True)
    assert affected == end - start + 1
    for index, paragraph in enumerate(doc.paragraphs):
        assert paragraph.format.italic == (start <= index <= end)


@given(st.text(alphabet="abcdef ", max_size=40), st.text(alphabet="abc", min_size=1, max_size=3))
def test_replace_all_removes_every_occurrence(text, needle):
    doc = Document()
    doc.add_paragraph(text)
    doc.replace_all(needle, "@")
    assert needle not in doc.paragraphs[0].text
