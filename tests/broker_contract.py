"""The broker-contract conformance suite: executable queue semantics.

The :class:`~repro.bench.transport.ShardBroker` contract — submit / lease /
renew / post / collect, lease expiry + reclaim, first-write-wins idempotent
posts, :class:`~repro.bench.transport.BrokerStatus` accounting — is what
keeps a distributed run bit-identical to serial, so it must hold for *every*
backend, present and future.  This module turns the contract from prose into
a reusable test suite: :class:`BrokerContractSuite` holds one test per
clause, written only against the abstract contract, and a concrete test
class runs the whole suite against each backend by inheriting it next to a
``broker_kind`` fixture (see ``tests/test_broker_contract.py``, which covers
all four shipped configurations: :class:`InMemoryBroker`,
:class:`LocalDirBroker`, and :class:`ObjectStoreBroker` over both the
in-memory and the filesystem object store).

To keep the suite cheap across N backends, manifest executions are memoized
on the (frozen, hashable) manifest: identical manifests produce identical
results — that is the determinism the whole transport layer is built on —
so each distinct manifest is executed once per test session no matter how
many backends the suite runs against.

Adding a broker backend?  Inherit the suite with your own ``broker_kind``
and make it pass unchanged; extending :func:`make_broker` here enrolls the
backend in every existing conformance run.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Tuple

import pytest

from repro.bench.faults import (
    BROKER_OPS,
    STORE_OPS,
    FaultSchedule,
    FaultSpec,
    FaultyBroker,
    FaultyObjectStore,
    RetryingBroker,
)

from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    DEFAULT_SEED,
    setting_by_key,
)
from repro.bench.shard import (
    ManifestExecutor,
    ShardError,
    ShardManifest,
    ShardResults,
    merge_shard_results,
    plan_shards,
)
from repro.bench.tasks import task_by_id
from repro.bench.store import (
    FileSystemObjectStore,
    InMemoryObjectStore,
    RetryPolicy,
)
from repro.bench.telemetry import AggregatingSink
from repro.bench.transport import (
    DEFAULT_PLAN,
    BrokerStatus,
    InMemoryBroker,
    LocalDirBroker,
    ObjectStoreBroker,
    PlanStatus,
    ShardBroker,
)

#: A small two-app grid that still exercises both interface stacks.
#: Two hand-written tasks plus one generated one: every contract clause
#: exercises a grid whose worker-side resolution goes through both the
#: static registry and the ``syn:`` token-regeneration path.
TASKS = ("ppt-01-blue-background", "word-02-landscape",
         "syn:s3-t2-g1-c2-y3-m2-d2-cy1-x1-n4:0002")
SETTINGS = ("gui-gpt5-medium", "dmi-gpt5-medium")

#: Every shipped broker configuration; the conformance suite runs against
#: each of these.
ALL_BROKER_KINDS = ("memory", "dir", "store-memory", "store-fs")

#: The same four configurations under a seeded hostile
#: :class:`~repro.bench.faults.FaultSchedule`: every clause of the suite
#: must hold verbatim while transient faults rain on every operation,
#: because bounded retry (the store broker's built-in policy, or
#: :class:`~repro.bench.faults.RetryingBroker` for the backends with no
#: store underneath) is supposed to make injected weather invisible.
CHAOS_BROKER_KINDS = tuple(f"chaos-{kind}" for kind in ALL_BROKER_KINDS)

#: The storm definition the chaos kinds run under: transient errors (in
#: bursts of two, so single-retry consumers would still fail) on every
#: store and broker op.  Latency and CAS-loss/truncation injection are
#: exercised by dedicated clauses/tests — they change *visible* timing or
#: return values, which the exact clause assertions intentionally pin.
HOSTILE_ERROR_SPEC = FaultSpec(error_rate=0.15, error_burst=2)

#: Deterministic adversary: same seed, same weather, every run.
CHAOS_SEED = 8


def hostile_schedule(seed: int = CHAOS_SEED) -> FaultSchedule:
    return FaultSchedule(seed=seed, ops={
        op: HOSTILE_ERROR_SPEC for op in (*STORE_OPS, *BROKER_OPS)})


def chaos_retry_policy() -> RetryPolicy:
    """The armour the chaos kinds wear: a deep budget (bursts of two eat
    attempts fast) with no real sleeping, so the suite stays quick."""
    return RetryPolicy(attempts=32, backoff_base_s=0.0,
                       sleep=lambda _delay: None)


def make_chaos_broker(kind: str, tmp_path,
                      schedule: FaultSchedule = None,
                      **kwargs) -> ShardBroker:
    """A *base*-kind broker with fault injection + retry armour layered on.

    Store-backed kinds inject at the store layer (the broker's own bounded
    retries must absorb the weather); memory/dir kinds inject on the queue
    verbs and wear :class:`RetryingBroker` as the consumer-side armour.
    """
    if schedule is None:
        schedule = hostile_schedule()
    no_sleep = lambda _delay: None  # noqa: E731 — injected latency is 0
    if kind == "store-memory":
        return ObjectStoreBroker(
            FaultyObjectStore(InMemoryObjectStore(), schedule, sleep=no_sleep),
            retry=chaos_retry_policy(), **kwargs)
    if kind == "store-fs":
        return ObjectStoreBroker(
            FaultyObjectStore(FileSystemObjectStore(tmp_path / "store"),
                              schedule, sleep=no_sleep),
            retry=chaos_retry_policy(), **kwargs)
    inner = make_broker(kind, tmp_path, **kwargs)
    return RetryingBroker(FaultyBroker(inner, schedule, sleep=no_sleep),
                          policy=chaos_retry_policy())


class FakeClock:
    """A controllable clock so lease expiry needs no real sleeping."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def small_plan(shards=2, seed=DEFAULT_SEED, trials=1):
    return plan_shards(shards, seed=seed, trials=trials,
                       setting_keys=SETTINGS, task_ids=TASKS)


def default_status(**counts) -> BrokerStatus:
    """The expected status of a broker holding one default-namespace plan."""
    return BrokerStatus(plans=(
        PlanStatus(name=DEFAULT_PLAN, priority=0, **counts),))


def drain(broker: ShardBroker, worker_id: str = "worker-a") -> list:
    """Lease+post until nothing is leasable; the posted leases, in order."""
    posted = []
    while True:
        lease = broker.lease(worker_id)
        if lease is None:
            return posted
        broker.post(lease, run_manifest(lease.manifest))
        posted.append(lease)


def make_broker(kind: str, tmp_path, **kwargs) -> ShardBroker:
    """One broker of the given kind, backed by fresh state under tmp_path.

    ``chaos-*`` kinds are the same backends wrapped in a seeded hostile
    :class:`FaultSchedule` plus the matching retry armour (see
    :func:`make_chaos_broker`); ``kwargs`` always reach the *inner*
    broker, so clauses can keep steering ``lease_ttl``/``clock``/``sink``.
    """
    if kind.startswith("chaos-"):
        return make_chaos_broker(kind[len("chaos-"):], tmp_path, **kwargs)
    if kind == "memory":
        return InMemoryBroker(**kwargs)
    if kind == "dir":
        return LocalDirBroker(tmp_path / "broker", **kwargs)
    if kind == "store-memory":
        return ObjectStoreBroker(InMemoryObjectStore(), **kwargs)
    if kind == "store-fs":
        return ObjectStoreBroker(FileSystemObjectStore(tmp_path / "store"),
                                 **kwargs)
    raise ValueError(f"unknown broker kind {kind!r}")


# ----------------------------------------------------------------------
# memoized execution (manifests are frozen and deterministic)
# ----------------------------------------------------------------------
_MANIFEST_RESULTS: Dict[ShardManifest, ShardResults] = {}
_SERIAL_REFERENCE: Dict[Tuple[int, int], Dict[str, object]] = {}


def run_manifest(manifest: ShardManifest) -> ShardResults:
    """Execute ``manifest`` (once per session; results are deterministic)."""
    if manifest not in _MANIFEST_RESULTS:
        _MANIFEST_RESULTS[manifest] = ManifestExecutor().run(manifest)
    return _MANIFEST_RESULTS[manifest]


def serial_reference(seed=DEFAULT_SEED, trials=1):
    """The single-machine serial outcomes every broker path must match."""
    key = (seed, trials)
    if key not in _SERIAL_REFERENCE:
        runner = BenchmarkRunner(BenchmarkConfig(
            trials=trials, seed=seed,
            tasks=[task_by_id(task_id) for task_id in TASKS]))
        _SERIAL_REFERENCE[key] = runner.run_settings(
            [setting_by_key(setting_key) for setting_key in SETTINGS])
    return _SERIAL_REFERENCE[key]


class BrokerContractSuite:
    """One test per contract clause; backend-agnostic by construction.

    Concrete classes provide a ``broker_kind`` fixture naming one of
    :data:`ALL_BROKER_KINDS` (typically via ``@pytest.fixture(params=…)``).
    """

    @pytest.fixture
    def fresh_broker(self, broker_kind, tmp_path):
        def factory(**kwargs) -> ShardBroker:
            return make_broker(broker_kind, tmp_path, **kwargs)

        return factory

    # ------------------------------------------------------------------
    # submit / lease / post / collect
    # ------------------------------------------------------------------
    def test_submit_lease_post_collect_round_trip(self, fresh_broker):
        broker = fresh_broker()
        broker.submit(small_plan(shards=2))
        assert broker.status() == default_status(queued=2, leased=0, done=0,
                                                 shard_count=2)
        seen = []
        while True:
            lease = broker.lease("worker-a")
            if lease is None:
                break
            seen.append(lease.manifest.shard_index)
            assert lease.worker_id == "worker-a"
            assert broker.post(lease, run_manifest(lease.manifest)) is True
        assert sorted(seen) == [0, 1]
        status = broker.status()
        assert status == default_status(queued=0, leased=0, done=2,
                                        shard_count=2)
        assert status.complete and status.drained
        merged = merge_shard_results(broker.collect())
        reference = serial_reference()
        for key in reference:
            assert [r.as_dict() for r in reference[key].results] \
                == [r.as_dict() for r in merged[key].results]

    def test_collect_returns_shard_index_order(self, fresh_broker):
        broker = fresh_broker()
        broker.submit(small_plan(shards=3, trials=2))
        leases = [broker.lease("worker-a") for _ in range(3)]
        for lease in reversed(leases):  # post out of order on purpose
            broker.post(lease, run_manifest(lease.manifest))
        indexes = [shard.manifest.shard_index for shard in broker.collect()]
        assert indexes == [0, 1, 2]

    def test_lease_moves_work_in_flight(self, fresh_broker):
        broker = fresh_broker()
        broker.submit(small_plan(shards=2))
        lease = broker.lease("worker-a")
        assert lease is not None
        assert lease.plan == DEFAULT_PLAN
        assert broker.status() == default_status(queued=1, leased=1, done=0,
                                                 shard_count=2)
        # The leased manifest is not offered to a second worker.
        other = broker.lease("worker-b")
        assert other is not None and other.manifest.shard_index \
            != lease.manifest.shard_index
        assert broker.lease("worker-c") is None

    def test_refuses_second_plan_and_unsubmitted_use(self, fresh_broker):
        broker = fresh_broker()
        # An empty broker is benign for workers (daemons start before the
        # first submit): nothing to lease, an empty status.
        assert broker.lease("worker-a") is None
        assert broker.status() == BrokerStatus(plans=())
        # But collecting a name nobody submitted is a caller error.
        with pytest.raises(ShardError, match="no plan has been submitted"):
            broker.collect()
        broker.submit(small_plan(shards=2))
        with pytest.raises(ShardError, match="no plan has been submitted"):
            broker.collect("never-submitted")
        with pytest.raises(ShardError, match="already holds a plan"):
            broker.submit(small_plan(shards=2))
        broker.submit(small_plan(shards=2), name="other")  # new name is fine
        with pytest.raises(ShardError, match="already holds a plan"):
            broker.submit(small_plan(shards=2), name="other")

    def test_rejects_invalid_plan_names(self, fresh_broker):
        broker = fresh_broker()
        for bad in ("", ".", "..", "a/b", "a..b", "plan name", "a\\b"):
            with pytest.raises(ShardError, match="invalid plan name"):
                broker.submit(small_plan(shards=1), name=bad)
        with pytest.raises(ShardError, match="invalid plan name"):
            broker.collect("a/b")
        assert broker.status() == BrokerStatus(plans=())  # nothing landed

    def test_rejects_empty_manifests_at_submit(self, fresh_broker):
        """Empty plans/shards never enter the queue on any backend.

        ``plan_shards`` already refuses ``shards > len(specs)``, but
        manifests are plain data — an over-sharded hand-built plan must be
        stopped at the submit boundary, not discovered at merge time as a
        shard that executed nothing.
        """
        broker = fresh_broker()
        plan = small_plan(shards=2)
        hollow = dataclasses.replace(plan.manifests[1], specs=())
        crafted = dataclasses.replace(
            plan, manifests=(plan.manifests[0], hollow))
        with pytest.raises(ShardError, match="no trial specs"):
            broker.submit(crafted)
        with pytest.raises(ShardError, match="empty plan"):
            broker.submit(dataclasses.replace(plan, manifests=()))
        assert broker.status() == BrokerStatus(plans=())  # nothing landed
        # A rejected submit must not burn the namespace: the intact plan
        # still submits and round-trips.
        broker.submit(plan)
        drain(broker)
        merged = merge_shard_results(broker.collect())
        assert all(outcome.results for outcome in merged.values())

    # ------------------------------------------------------------------
    # multi-plan namespaces
    # ------------------------------------------------------------------
    def test_namespace_isolation_and_per_plan_collect(self, fresh_broker):
        """Results never cross namespaces, and each plan's collect merges
        byte-identical to its own serial run."""
        broker = fresh_broker()
        broker.submit(small_plan(shards=2), name="alpha")
        broker.submit(small_plan(shards=3, trials=2), name="beta")
        posted = drain(broker)
        assert len(posted) == 5
        alpha = broker.collect("alpha")
        beta = broker.collect("beta")
        assert [s.manifest.shard_count for s in alpha] == [2, 2]
        assert [s.manifest.shard_count for s in beta] == [3, 3, 3]
        for shards, trials in ((alpha, 1), (beta, 2)):
            merged = merge_shard_results(shards)
            reference = serial_reference(trials=trials)
            for key in reference:
                assert [r.as_dict() for r in reference[key].results] \
                    == [r.as_dict() for r in merged[key].results]

    def test_fair_share_interleaves_two_plans(self, fresh_broker):
        """Round-robin across live plans: equal-priority plans alternate
        leases, so neither waits out the other."""
        broker = fresh_broker()
        broker.submit(small_plan(shards=3), name="plan-a")
        broker.submit(small_plan(shards=3, trials=2), name="plan-b")
        sequence = []
        while True:
            lease = broker.lease("worker-a")
            if lease is None:
                break
            sequence.append(lease.plan)
        assert len(sequence) == 6
        assert sorted(sequence) == ["plan-a"] * 3 + ["plan-b"] * 3
        assert all(sequence[i] != sequence[i + 1]
                   for i in range(len(sequence) - 1))

    def test_priority_breaks_lease_order_ties(self, fresh_broker):
        broker = fresh_broker()
        broker.submit(small_plan(shards=2), name="low", priority=0)
        broker.submit(small_plan(shards=2), name="high", priority=5)
        first = broker.lease("worker-a")
        assert first is not None and first.plan == "high"

    def test_drain_of_one_plan_leaves_the_other_leasable(self, fresh_broker):
        broker = fresh_broker()
        broker.submit(small_plan(shards=1), name="small")
        broker.submit(small_plan(shards=2, trials=2), name="big")
        # Drain "small" completely, posting nothing to "big" yet ("big"
        # leases picked up along the way are held in flight).
        held_big = []
        while not broker.status().plan("small").complete:
            lease = broker.lease("worker-a")
            assert lease is not None
            if lease.plan == "small":
                broker.post(lease, run_manifest(lease.manifest))
            else:
                held_big.append(lease)
        small_status = broker.status().plan("small")
        assert small_status.complete and small_status.drained
        # "big" is still fully workable after its neighbour drained.
        for lease in held_big:
            broker.post(lease, run_manifest(lease.manifest))
        drain(broker)
        assert broker.status().plan("big").complete
        assert len(broker.collect("big")) == 2
        assert len(broker.collect("small")) == 1

    def test_plan_lifecycle_events_are_emitted(self, fresh_broker):
        sink = AggregatingSink()
        broker = fresh_broker(sink=sink)
        broker.submit(small_plan(shards=1), name="watched")
        broker.submit(small_plan(shards=2, trials=2), name="other")
        assert sink.snapshot()["counters"]["plan_submitted"] == 2
        assert len(drain(broker)) == 3
        assert sink.snapshot()["counters"]["plan_drained"] == 2

    def test_post_rejects_results_from_a_foreign_plan(self, fresh_broker):
        broker = fresh_broker()
        broker.submit(small_plan(shards=1))
        lease = broker.lease("worker-a")
        alien = small_plan(shards=1, seed=DEFAULT_SEED + 1)
        with pytest.raises(ShardError, match="'seed'"):
            broker.post(lease, run_manifest(alien.manifests[0]))

    def test_post_rejects_out_of_range_shard_index(self, fresh_broker):
        """Same plan identity but an impossible shard index: every backend
        must refuse, or status() could report complete with a shard
        missing."""
        broker = fresh_broker()
        broker.submit(small_plan(shards=1))
        lease = broker.lease("worker-a")
        shard = run_manifest(lease.manifest)
        rogue = ShardResults(
            manifest=dataclasses.replace(shard.manifest, shard_index=5),
            results=shard.results)
        with pytest.raises(ShardError, match="out of range"):
            broker.post(lease, rogue)
        assert broker.status().done == 0

    # ------------------------------------------------------------------
    # lease expiry + reclaim
    # ------------------------------------------------------------------
    def test_crashed_worker_lease_expires_and_is_reclaimed(self,
                                                           fresh_broker):
        clock = FakeClock()
        broker = fresh_broker(lease_ttl=60.0, clock=clock)
        broker.submit(small_plan(shards=1))
        # worker-a leases the only manifest and "crashes" (never posts).
        crashed = broker.lease("worker-a")
        assert crashed is not None
        assert broker.lease("worker-b") is None  # still leased, nothing free
        assert broker.status().leased == 1
        clock.advance(59.9)
        assert broker.lease("worker-b") is None  # not expired yet
        clock.advance(0.2)
        reclaimed = broker.lease("worker-b")  # expired: reclaimed + re-leased
        assert reclaimed is not None
        assert reclaimed.manifest == crashed.manifest
        assert reclaimed.worker_id == "worker-b"
        broker.post(reclaimed, run_manifest(reclaimed.manifest))
        assert broker.status().complete
        assert list(merge_shard_results(broker.collect()))  # merges cleanly

    def test_straggler_post_after_reclaim_is_harmless(self, fresh_broker):
        """The crashed worker was only slow: it posts after its lease was
        reclaimed and re-run.  First write wins; the queue still drains."""
        clock = FakeClock()
        broker = fresh_broker(lease_ttl=60.0, clock=clock)
        broker.submit(small_plan(shards=1))
        slow = broker.lease("worker-slow")
        slow_results = run_manifest(slow.manifest)
        clock.advance(61.0)
        fast = broker.lease("worker-fast")
        assert fast is not None
        assert broker.post(slow, slow_results) is True  # straggler lands 1st
        assert broker.post(fast, run_manifest(fast.manifest)) is False
        status = broker.status()
        assert status == default_status(queued=0, leased=0, done=1,
                                        shard_count=1)
        assert list(merge_shard_results(broker.collect()))

    def test_duplicate_result_post_is_idempotent(self, fresh_broker):
        broker = fresh_broker()
        broker.submit(small_plan(shards=2))
        lease = broker.lease("worker-a")
        results = run_manifest(lease.manifest)
        assert broker.post(lease, results) is True
        assert broker.post(lease, results) is False  # duplicate: no-op
        assert broker.status().done == 1
        lease = broker.lease("worker-a")
        broker.post(lease, run_manifest(lease.manifest))
        merged = merge_shard_results(broker.collect())
        for outcome in merged.values():
            assert len(outcome.results) == len(TASKS)  # no double-counting

    # ------------------------------------------------------------------
    # renew (the heartbeat primitive)
    # ------------------------------------------------------------------
    def test_renew_extends_a_live_lease_past_its_ttl(self, fresh_broker):
        clock = FakeClock()
        broker = fresh_broker(lease_ttl=60.0, clock=clock)
        broker.submit(small_plan(shards=1))
        lease = broker.lease("worker-a")
        for _ in range(3):  # keep renewing while the manifest "runs"
            clock.advance(40.0)  # would have expired without the renewals
            lease = broker.renew(lease)
            assert lease is not None
            assert lease.deadline == clock() + 60.0
            assert broker.lease("worker-b") is None  # never reclaimable
        assert broker.status().leased == 1
        assert broker.post(lease, run_manifest(lease.manifest)) is True
        assert broker.status().complete

    def test_renew_after_reclaim_reports_the_lease_lost(self, fresh_broker):
        clock = FakeClock()
        broker = fresh_broker(lease_ttl=60.0, clock=clock)
        broker.submit(small_plan(shards=1))
        stale = broker.lease("worker-a")
        clock.advance(61.0)  # worker-a's lease expires...
        taken = broker.lease("worker-b")  # ...and worker-b reclaims it
        assert taken is not None
        assert broker.renew(stale) is None  # the original holder lost it
        renewed = broker.renew(taken)  # the new holder renews fine
        assert renewed is not None and renewed.worker_id == "worker-b"
        broker.post(renewed, run_manifest(renewed.manifest))
        assert broker.status().complete

    def test_renew_after_post_reports_the_lease_gone(self, fresh_broker):
        broker = fresh_broker()
        broker.submit(small_plan(shards=1))
        lease = broker.lease("worker-a")
        broker.post(lease, run_manifest(lease.manifest))
        assert broker.renew(lease) is None

    def test_expired_but_unreclaimed_lease_can_still_be_revived(self,
                                                                fresh_broker):
        """A late heartbeat that beats every reclaimer keeps the lease: the
        manifest was never taken by anyone else, so the work is not lost."""
        clock = FakeClock()
        broker = fresh_broker(lease_ttl=60.0, clock=clock)
        broker.submit(small_plan(shards=1))
        lease = broker.lease("worker-a")
        clock.advance(61.0)  # expired, but nobody has reclaimed it yet
        revived = broker.renew(lease)
        assert revived is not None
        assert broker.lease("worker-b") is None  # fresh deadline holds again
        broker.post(revived, run_manifest(revived.manifest))
        assert broker.status().complete

    # ------------------------------------------------------------------
    # status counters
    # ------------------------------------------------------------------
    def test_status_counters_track_the_full_lifecycle(self, fresh_broker):
        broker = fresh_broker()
        broker.submit(small_plan(shards=3, trials=2))
        counts = [broker.status()]
        leases = []
        for _ in range(2):
            leases.append(broker.lease("worker-a"))
            counts.append(broker.status())
        broker.post(leases[0], run_manifest(leases[0].manifest))
        counts.append(broker.status())
        assert [(s.queued, s.leased, s.done) for s in counts] == [
            (3, 0, 0), (2, 1, 0), (1, 2, 0), (1, 1, 1)]
        assert all(s.shard_count == 3 for s in counts)
        assert not counts[-1].complete and not counts[-1].drained

    def test_broker_rejects_nonpositive_lease_ttl(self, fresh_broker):
        for ttl in (0, -5):
            with pytest.raises(ShardError, match="lease_ttl"):
                fresh_broker(lease_ttl=ttl)

    # ------------------------------------------------------------------
    # chaos clauses: the contract under adversarial weather
    # ------------------------------------------------------------------
    def test_cas_storm_exactly_one_lease_wins(self, fresh_broker):
        """≥100 workers race one queued shard from a start barrier: the
        lease CAS hands it to exactly one of them, the rest read an honest
        ``None`` — no duplicate grant, no error, no lost shard."""
        broker = fresh_broker()
        broker.submit(small_plan(shards=1))
        racers = 120
        barrier = threading.Barrier(racers)
        wins, errors = [], []
        lock = threading.Lock()

        def race(index: int) -> None:
            barrier.wait()
            try:
                lease = broker.lease(f"storm-{index:03d}")
            except Exception as error:  # noqa: BLE001 — recorded, asserted
                with lock:
                    errors.append(error)
                return
            if lease is not None:
                with lock:
                    wins.append(lease)

        threads = [threading.Thread(target=race, args=(index,))
                   for index in range(racers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(wins) == 1, f"{len(wins)} workers won the same shard"
        broker.post(wins[0], run_manifest(wins[0].manifest))
        assert broker.status().complete
        assert list(merge_shard_results(broker.collect()))

    def test_partial_list_reads_never_drop_a_queued_shard(self, broker_kind,
                                                          tmp_path):
        """Truncated ``list_prefix`` pages (or error storms, for backends
        with no store to truncate) may delay progress but never lose work:
        the queue still drains to a complete, mergeable plan."""
        base = broker_kind.removeprefix("chaos-")
        if base.startswith("store"):
            # Half of every listing call returns only a prefix of the
            # truth — the eventually-consistent page a cloud store serves.
            schedule = FaultSchedule(seed=88, ops={
                "list_prefix": FaultSpec(truncate_rate=0.5)})
        else:
            schedule = hostile_schedule(seed=88)
        broker = make_chaos_broker(base, tmp_path, schedule=schedule)
        broker.submit(small_plan(shards=4))
        for _ in range(600):
            row = broker.status().plan(DEFAULT_PLAN)
            # done counts only shrink under truncation (results are listed,
            # never fabricated), so a complete row is trustworthy; a
            # missing/short row just means this poll caught a short page.
            if row is not None and row.complete:
                break
            lease = broker.lease("worker-a")
            if lease is not None:
                broker.post(lease, run_manifest(lease.manifest))
        else:
            pytest.fail("queue did not drain under truncated listings")
        for _ in range(200):
            collected = broker.collect()
            if len(collected) == 4:
                break
        merged = merge_shard_results(collected)  # re-validates completeness
        assert all(len(outcome.results) == len(TASKS)
                   for outcome in merged.values())
