"""Tests for the accessibility element and tree helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.uia.control_types import ControlType
from repro.uia.element import BoundingRect, UIElement
from repro.uia.tree import (
    TreeWalker,
    diff_snapshots,
    find_all,
    find_first,
    snapshot,
    tree_depth,
    tree_size,
    visible_elements,
)


def build_tree():
    root = UIElement(name="root", control_type=ControlType.WINDOW)
    pane = root.add_child(UIElement(name="pane", control_type=ControlType.PANE))
    button = pane.add_child(UIElement(name="ok", control_type=ControlType.BUTTON,
                                      automation_id="dlg.ok"))
    hidden = pane.add_child(UIElement(name="hidden", control_type=ControlType.BUTTON,
                                      visible=False))
    hidden.add_child(UIElement(name="inner", control_type=ControlType.TEXT))
    return root, pane, button, hidden


# ----------------------------------------------------------------------
# BoundingRect
# ----------------------------------------------------------------------
def test_rect_contains_and_center():
    rect = BoundingRect(10, 20, 100, 50)
    assert rect.contains(10, 20)
    assert rect.contains(109.9, 69.9)
    assert not rect.contains(110, 20)
    assert rect.center == (60, 45)
    assert rect.area == 5000


def test_rect_intersects():
    a = BoundingRect(0, 0, 10, 10)
    b = BoundingRect(5, 5, 10, 10)
    c = BoundingRect(20, 20, 5, 5)
    assert a.intersects(b)
    assert not a.intersects(c)


# ----------------------------------------------------------------------
# structure
# ----------------------------------------------------------------------
def test_add_child_sets_parent_and_reparents():
    root, pane, button, _hidden = build_tree()
    assert button.parent is pane
    other = UIElement(name="other")
    other.add_child(button)
    assert button.parent is other
    assert button not in pane.children


def test_ancestors_root_and_depth():
    root, pane, button, _ = build_tree()
    assert button.ancestors() == [pane, root]
    assert button.root() is root
    assert button.depth() == 2
    assert root.depth() == 0


def test_iter_descendants_is_preorder():
    root, pane, button, hidden = build_tree()
    names = [e.name for e in root.iter_descendants()]
    assert names == ["pane", "ok", "hidden", "inner"]


def test_find_and_find_all():
    root, pane, button, _ = build_tree()
    assert root.find(name="ok") is button
    assert root.find(automation_id="dlg.ok") is button
    assert root.find(name="nope") is None
    assert len(root.find_all(control_type=ControlType.BUTTON)) == 2
    assert root.find(name_contains="OK") is button
    with pytest.raises(TypeError):
        root.find(bogus="x")


def test_primary_id_fallbacks():
    assert UIElement(automation_id="abc", name="x").primary_id == "abc"
    assert UIElement(name="x").primary_id == "x"
    assert UIElement().primary_id == "[Unnamed]"


def test_visibility_depends_on_ancestors():
    root, pane, button, hidden = build_tree()
    inner = hidden.children[0]
    assert button.is_on_screen()
    assert not inner.is_on_screen()       # parent hidden
    assert inner.is_offscreen
    pane.visible = False
    assert not button.is_on_screen()


def test_clear_children():
    root, pane, *_ = build_tree()
    pane.clear_children()
    assert pane.children == []


# ----------------------------------------------------------------------
# tree helpers
# ----------------------------------------------------------------------
def test_tree_size_and_depth():
    root, *_ = build_tree()
    assert tree_size(root) == 5
    assert tree_depth(root) == 4


def test_visible_elements_excludes_hidden_subtrees():
    root, pane, button, hidden = build_tree()
    names = {e.name for e in visible_elements(root)}
    assert names == {"root", "pane", "ok"}


def test_find_first_and_all_with_predicate():
    root, *_ = build_tree()
    assert find_first(root, lambda e: e.control_type == ControlType.BUTTON).name == "ok"
    assert len(find_all(root, lambda e: e.control_type == ControlType.BUTTON)) == 2


def test_tree_walker_skips_filtered_nodes_but_keeps_their_children():
    root = UIElement(name="root", control_type=ControlType.WINDOW)
    separator = root.add_child(UIElement(name="sep", control_type=ControlType.SEPARATOR))
    child = separator.add_child(UIElement(name="inside", control_type=ControlType.BUTTON))
    walker = TreeWalker(condition=lambda e: e.control_type != ControlType.SEPARATOR)
    assert walker.get_children(root) == [child]
    assert walker.get_parent(child) is root
    assert [e.name for e in walker.walk(root)] == ["root", "inside"]


def test_tree_walker_siblings():
    root = UIElement(name="root")
    a = root.add_child(UIElement(name="a"))
    b = root.add_child(UIElement(name="b"))
    walker = TreeWalker()
    assert walker.get_next_sibling(a) is b
    assert walker.get_next_sibling(b) is None
    assert walker.get_first_child(root) is a
    assert walker.get_last_child(root) is b


def test_snapshot_and_diff():
    root, pane, button, hidden = build_tree()
    before = snapshot(root)
    new_button = pane.add_child(UIElement(name="new", control_type=ControlType.BUTTON))
    after = snapshot(root)
    new_entries = diff_snapshots(before, after)
    assert [e["name"] for e in new_entries] == ["new"]
    assert new_entries[0]["runtime_id"] == new_button.runtime_id


# ----------------------------------------------------------------------
# property-based: structural invariants
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=40))
def test_random_trees_preserve_parent_child_consistency(branch_choices):
    """Attaching children per a random recipe keeps depth/ancestor invariants."""
    root = UIElement(name="root")
    nodes = [root]
    for index, choice in enumerate(branch_choices):
        parent = nodes[choice % len(nodes)]
        child = parent.add_child(UIElement(name=f"n{index}"))
        nodes.append(child)
    for node in root.iter_subtree():
        for child in node.children:
            assert child.parent is node
        assert node.depth() == len(node.ancestors())
        assert node.root() is root
    assert tree_size(root) == len(nodes)
