"""Backend-specific transport tests: everything the conformance suite isn't.

The cross-backend queue contract (submit/lease/renew/post/collect, expiry +
reclaim, first-write-wins, status counters) lives in
``tests/broker_contract.py`` and runs against every backend via
``tests/test_broker_contract.py``.  This module covers what is specific to
one backend or one component: the worker pull loop and its heartbeat
thread, lease-loss abandonment, CAS races on the object-store broker,
corrupt files/objects in each backend's storage, and the ArtifactCache
accounting of the worker loop.
"""

import json
import threading
import time
from urllib.parse import quote

import pytest

from broker_contract import (
    DEFAULT_SEED,
    FakeClock,
    SETTINGS,
    TASKS,
    run_manifest,
    serial_reference,
    small_plan,
)
from repro.bench.shard import (
    ManifestExecutor,
    ShardError,
    merge_shard_results,
    plan_shards,
    shard_file_name,
)
from repro.bench.store import FileSystemObjectStore
from repro.bench.telemetry import AggregatingSink, use_sink
from repro.bench.transport import (
    DEFAULT_LEASE_TTL,
    IDLE_BACKOFF_BASE,
    LeaseHeartbeat,
    InMemoryBroker,
    LocalDirBroker,
    ObjectStoreBroker,
    ShardWorker,
)


class StubExecutor(ManifestExecutor):
    """Returns memoized results instantly; ``before`` hooks run first.

    The hook is how tests orchestrate "mid-run" events deterministically:
    advance a fake clock, steal a lease, or wait for a heartbeat tick while
    the manifest is "executing".
    """

    def __init__(self, before=None) -> None:
        super().__init__()
        self._before = before

    def run(self, manifest, progress=None):
        if self._before is not None:
            self._before(manifest)
        return run_manifest(manifest)


def wait_until(condition, timeout=5.0):
    deadline = time.time() + timeout
    while not condition() and time.time() < deadline:
        time.sleep(0.005)
    assert condition(), "timed out waiting for a background event"


# ----------------------------------------------------------------------
# worker heartbeats: long manifests outlive lease_ttl
# ----------------------------------------------------------------------
def test_heartbeat_keeps_a_long_manifest_alive(tmp_path):
    """Acceptance: a manifest that runs far past lease_ttl finishes and
    posts without being reclaimed when heartbeats are on."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "queue", lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    renewals = []

    def long_run(_manifest):
        clock.advance(100.0)  # the manifest "runs" far past the 60s ttl
        wait_until(lambda: len(renewals) >= 2)  # heartbeats fire meanwhile
        assert broker.lease("rival") is None  # renewed: nothing to reclaim

    worker = ShardWorker(broker, StubExecutor(before=long_run),
                         worker_id="slow-but-alive", poll=0, heartbeat=0.02,
                         on_renew=lambda lease, ok: renewals.append(ok))
    completed = worker.run()
    assert len(completed) == 1 and worker.abandoned == 0
    assert renewals and all(renewals)
    assert broker.status().complete
    assert list(merge_shard_results(broker.collect()))


def test_without_heartbeats_a_long_manifest_is_reclaimed_mid_run(tmp_path):
    """The control for the test above: same long manifest, heartbeats off —
    a rival reclaims the expired lease mid-run (the pre-heartbeat PR 3
    behaviour, still safe because posting is first-write-wins)."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "queue", lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    rival = {}

    def long_run(_manifest):
        clock.advance(100.0)
        rival["lease"] = broker.lease("rival")

    worker = ShardWorker(broker, StubExecutor(before=long_run),
                         worker_id="slow-and-stale", poll=0, heartbeat=0)
    completed = worker.run()
    assert rival["lease"] is not None  # the expired lease was reclaimed
    assert len(completed) == 1  # the straggler still posted first
    assert broker.post(rival["lease"],
                       run_manifest(rival["lease"].manifest)) is False


def test_worker_abandons_manifest_when_heartbeat_loses_the_lease(tmp_path):
    """Fault injection: the lease is reclaimed while the manifest runs; the
    heartbeat detects the loss and the worker abandons the manifest —
    nothing posted, the thief owns the shard."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "queue", lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    renewals, thief = [], {}

    def stolen_mid_run(_manifest):
        clock.advance(61.0)  # victim's lease expires mid-run...
        thief["lease"] = broker.lease("thief")  # ...and a thief reclaims it
        assert thief["lease"] is not None
        wait_until(lambda: renewals)  # heartbeat discovers the loss

    worker = ShardWorker(broker, StubExecutor(before=stolen_mid_run),
                         worker_id="victim", poll=0, heartbeat=0.02,
                         on_renew=lambda lease, ok: renewals.append(ok))
    completed = worker.run()
    assert completed == [] and worker.abandoned == 1
    assert renewals[0] is False
    assert broker.status().done == 0  # the victim posted nothing
    broker.post(thief["lease"], run_manifest(thief["lease"].manifest))
    assert broker.status().complete
    assert list(merge_shard_results(broker.collect()))


def test_crash_mid_heartbeat_is_recovered_by_reclaim(tmp_path):
    """Acceptance: a worker that dies *between* heartbeats stops renewing;
    its lease expires one ttl after the last renewal and reclaim recovers
    the manifest, bit-identical to serial."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "queue", lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    renewals = []
    doomed = broker.lease("doomed")
    beat = LeaseHeartbeat(broker, doomed, interval=0.02,
                          on_renew=lambda lease, ok: renewals.append(ok))
    beat.start()
    wait_until(lambda: len(renewals) >= 2)  # heartbeats were flowing...
    beat.stop()  # ...then the worker process dies mid-heartbeat
    assert all(renewals) and not beat.lost
    clock.advance(59.9)
    assert broker.lease("healthy") is None  # last renewal still protects it
    clock.advance(0.2)
    healthy = ShardWorker(broker, StubExecutor(), worker_id="healthy", poll=0)
    assert len(healthy.run()) == 1
    merged = merge_shard_results(broker.collect())
    reference = serial_reference()
    for key in reference:
        assert [r.as_dict() for r in reference[key].results] \
            == [r.as_dict() for r in merged[key].results]


def test_worker_heartbeat_configuration_is_validated(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker", lease_ttl=60.0)
    with pytest.raises(ShardError, match="heartbeat .*shorter than"):
        ShardWorker(broker, heartbeat=60.0)  # >= lease_ttl
    with pytest.raises(ShardError, match="heartbeat"):
        ShardWorker(broker, heartbeat=-1)
    with pytest.raises(ShardError, match="heartbeat"):
        ShardWorker(broker, heartbeat=float("nan"))
    assert ShardWorker(broker).heartbeat == 20.0  # defaults to lease_ttl/3
    assert ShardWorker(broker, heartbeat=0).heartbeat == 0  # disabled
    with pytest.raises(ShardError, match="heartbeat interval"):
        LeaseHeartbeat(broker, None, interval=0)


# ----------------------------------------------------------------------
# object-store broker: CAS races and shared-store handles
# ----------------------------------------------------------------------
def store_broker(tmp_path, **kwargs):
    store = FileSystemObjectStore(tmp_path / "store")
    return store, ObjectStoreBroker(store, **kwargs)


def test_two_workers_racing_a_stale_cas_lease_exactly_one_wins(tmp_path):
    """Fault injection: two workers observe the same expired lease object
    and race to reclaim it from the same etag — the CAS lets exactly one
    win."""
    clock = FakeClock()
    store, broker = store_broker(tmp_path, lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    assert broker.lease("crasher") is not None
    clock.advance(61.0)  # the crasher's lease object is now stale
    key = "lease/default/" + shard_file_name(0, 1)
    data, etag = store.get(key)
    stale = json.loads(data)
    assert stale["state"] == "leased" and stale["worker"] == "crasher"
    outcomes = []
    for racer in ("racer-a", "racer-b"):  # both hold the same observed etag
        claim = dict(stale, worker=racer, grant=stale["grant"] + 1,
                     deadline_ms=int((clock() + 60.0) * 1000))
        outcomes.append(store.put_if_match(
            key, json.dumps(claim).encode("utf-8"), etag))
    assert sorted(outcomes) == [False, True]
    winner = json.loads(store.get(key)[0])
    assert winner["worker"] == "racer-a"  # first CAS won, second bounced


def test_broker_level_reclaim_race_hands_the_lease_to_one_worker(tmp_path):
    clock = FakeClock()
    store, coordinator = store_broker(tmp_path, lease_ttl=60.0, clock=clock)
    coordinator.submit(small_plan(shards=1))
    # Three machines = three broker handles over one shared store.
    handles = [ObjectStoreBroker(store, lease_ttl=60.0, clock=clock)
               for _ in range(3)]
    assert handles[0].lease("crasher") is not None
    clock.advance(61.0)
    leases = [handle.lease(f"worker-{index}")
              for index, handle in enumerate(handles)]
    taken = [lease for lease in leases if lease is not None]
    assert len(taken) == 1  # exactly one handle reclaimed the stale lease
    assert taken[0].worker_id == "worker-0"  # the first caller won
    handles[1].post(taken[0], run_manifest(taken[0].manifest))
    assert coordinator.status().complete  # visible through every handle
    assert list(merge_shard_results(coordinator.collect()))


def test_store_broker_does_not_release_a_done_shard(tmp_path):
    """After a straggler posts, the shard's results exist even though its
    lease object may still read queued/leased — lease() must skip it."""
    clock = FakeClock()
    store, broker = store_broker(tmp_path, lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    slow = broker.lease("slow")
    clock.advance(61.0)
    # The straggler posts after expiry; the lease object goes back to a
    # stale "leased" state from the reclaim's perspective.
    assert broker.post(slow, run_manifest(slow.manifest)) is True
    assert broker.lease("eager") is None  # done: nothing to re-run
    status = broker.status()
    assert status.done == 1 and status.queued == 0 and status.complete


# ----------------------------------------------------------------------
# fault injection: corrupt objects in the store
# ----------------------------------------------------------------------
def corrupt_object(store: FileSystemObjectStore, key: str, text: str) -> None:
    """Overwrite the current generation of ``key`` on disk, bypassing the
    store API — what a torn upload or bit rot would leave behind."""
    key_dir = store.root / quote(key, safe="")
    generations = sorted(path for path in key_dir.iterdir()
                         if path.name.startswith("g"))
    generations[-1].write_text(text, encoding="utf-8")


def test_corrupt_plan_object_raises_clean_shard_error(tmp_path):
    store, broker = store_broker(tmp_path)
    broker.submit(small_plan(shards=1))
    corrupt_object(store, "plans/default", "{truncated")
    with pytest.raises(ShardError, match="not valid JSON") as excinfo:
        broker.status()
    assert "'plans/default'" in str(excinfo.value)  # names the offending key


def test_corrupt_manifest_object_raises_clean_shard_error(tmp_path):
    store, broker = store_broker(tmp_path)
    broker.submit(small_plan(shards=1))
    key = "manifest/default/" + shard_file_name(0, 1)
    corrupt_object(store, key, json.dumps({"kind": "wrong-kind"}))
    with pytest.raises(ShardError, match="field 'kind'") as excinfo:
        broker.lease("worker-a")
    assert repr(key) in str(excinfo.value)


def test_truncated_result_object_raises_clean_shard_error(tmp_path):
    store, broker = store_broker(tmp_path)
    broker.submit(small_plan(shards=1))
    lease = broker.lease("worker-a")
    broker.post(lease, run_manifest(lease.manifest))
    key = "result/default/" + shard_file_name(0, 1)
    payload = json.loads(store.get(key)[0])
    payload["results"] = payload["results"][:-1]  # drop one trial's result
    corrupt_object(store, key, json.dumps(payload))
    with pytest.raises(ShardError, match="specs but") as excinfo:
        broker.collect()
    assert repr(key) in str(excinfo.value)


def test_lease_object_missing_state_field_raises_clean_shard_error(tmp_path):
    store, broker = store_broker(tmp_path)
    broker.submit(small_plan(shards=1))
    key = "lease/default/" + shard_file_name(0, 1)
    corrupt_object(store, key, "{}")
    with pytest.raises(ShardError,
                       match="missing required field 'state'") as excinfo:
        broker.status()
    assert repr(key) in str(excinfo.value)
    corrupt_object(store, key, json.dumps({"state": "limbo"}))
    with pytest.raises(ShardError, match="expected one of"):
        broker.lease("worker-a")


# ----------------------------------------------------------------------
# fault injection: corrupt files in the directory broker
# ----------------------------------------------------------------------
def test_corrupt_queued_manifest_raises_clean_shard_error(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    manifest_path = next((tmp_path / "broker" / "plans" / "default" / "queued").glob("shard-*.json"))
    manifest_path.write_text("{truncated", encoding="utf-8")
    with pytest.raises(ShardError, match="not valid JSON") as excinfo:
        broker.lease("worker-a")
    assert manifest_path.name in str(excinfo.value)  # names the file


def test_truncated_done_results_raise_clean_shard_error(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    lease = broker.lease("worker-a")
    broker.post(lease, run_manifest(lease.manifest))
    done_path = next((tmp_path / "broker" / "plans" / "default" / "done").glob("shard-*.json"))
    payload = json.loads(done_path.read_text())
    payload["results"] = payload["results"][:-1]
    done_path.write_text(json.dumps(payload))
    with pytest.raises(ShardError, match="specs but") as excinfo:
        broker.collect()
    assert str(done_path) in str(excinfo.value)


def test_corrupt_plan_header_raises_clean_shard_error(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    plan_path = tmp_path / "broker" / "plans" / "default" / "plan.json"
    plan_path.write_text("not json at all")
    with pytest.raises(ShardError, match="not valid JSON"):
        broker.status()
    header = {"kind": "repro-broker-plan", "format_version": 1, "seed": 11}
    plan_path.write_text(json.dumps(header))
    with pytest.raises(ShardError, match="missing required field "
                                         "'shard_count'") as excinfo:
        broker.status()
    assert str(plan_path) in str(excinfo.value)


def test_malformed_lease_filename_raises_clean_shard_error(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    bogus = tmp_path / "broker" / "plans" / "default" / "leased" / "shard-000-of-001.json.lease.soon.w"
    bogus.write_text("{}")
    with pytest.raises(ShardError, match="malformed lease filename"):
        broker.status()


# ----------------------------------------------------------------------
# directory-broker lease mechanics
# ----------------------------------------------------------------------
def test_dir_renew_moves_the_deadline_into_the_lease_filename(tmp_path):
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "broker", lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    lease = broker.lease("worker-a")
    clock.advance(10.0)
    renewed = broker.renew(lease)
    assert renewed is not None and renewed.token != lease.token
    assert renewed.deadline == clock() + 60.0
    leased_files = [path.name
                    for path in (tmp_path / "broker" / "plans" / "default" / "leased").iterdir()]
    assert leased_files == [renewed.token]  # old filename gone, exactly one
    assert str(int(renewed.deadline * 1000)) in renewed.token


def test_dir_lease_skips_done_manifest_with_stale_queued_copy(tmp_path):
    """Regression: if a reclaim re-queued a manifest whose results were
    posted by a straggler, the queued copy must be skipped and cleaned, not
    pointlessly re-run."""
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    lease = broker.lease("worker-a")
    broker.post(lease, run_manifest(lease.manifest))
    name = shard_file_name(0, 1)
    stale_copy = tmp_path / "broker" / "plans" / "default" / "queued" / name
    lease.manifest.save(stale_copy)  # simulate the reclaim/straggler race
    assert broker.lease("worker-b") is None
    assert not stale_copy.exists()  # cleaned up in passing
    status = broker.status()
    assert status.done == 1 and status.queued == 0 and status.complete


def test_worker_crash_between_two_real_workers_still_bit_identical(tmp_path):
    """End-to-end reclaim on the directory broker: a worker leases shard 0
    and dies; after expiry a healthy worker drains everything; the collected
    merge is still bit-identical to serial."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "broker", lease_ttl=30.0, clock=clock)
    broker.submit(small_plan(shards=2))
    assert broker.lease("doomed") is not None  # crashes here
    clock.advance(31.0)
    worker = ShardWorker(broker, ManifestExecutor(), worker_id="healthy",
                         poll=0)
    completed = worker.run()
    assert len(completed) == 2
    merged = merge_shard_results(broker.collect())
    reference = serial_reference()
    for key in reference:
        assert [r.as_dict() for r in reference[key].results] \
            == [r.as_dict() for r in merged[key].results]


# ----------------------------------------------------------------------
# the worker pull loop
# ----------------------------------------------------------------------
def test_worker_drains_queue_and_respects_max_manifests(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=3, trials=2))
    first = ShardWorker(broker, ManifestExecutor(), worker_id="w0", poll=0,
                        max_manifests=1)
    assert len(first.run()) == 1
    assert broker.status().done == 1
    rest = ShardWorker(broker, ManifestExecutor(), worker_id="w1", poll=0)
    completed = rest.run()
    assert len(completed) == 2
    assert broker.status().complete
    assert {shard.manifest.shard_index for shard in completed} == {1, 2}


def test_worker_polls_while_a_peer_holds_a_lease(tmp_path):
    """queued=0 but leased>0: a polling worker waits (the peer may crash and
    its lease becomes reclaimable) instead of exiting early.  Idle sleeps
    back off exponentially with --poll as the ceiling."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "broker", lease_ttl=10.0, clock=clock)
    broker.submit(small_plan(shards=1))
    assert broker.lease("peer") is not None  # peer holds the only manifest
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        clock.advance(6.0)  # two sleeps push past the 10s ttl

    worker = ShardWorker(broker, ManifestExecutor(), worker_id="patient",
                         poll=2.5, heartbeat=0, sleep=fake_sleep)
    completed = worker.run()
    assert len(completed) == 1  # reclaimed the peer's manifest and ran it
    assert sleeps and all(0 < s <= 2.5 for s in sleeps)
    # The first idle sleep starts at the backoff base, not at --poll.
    assert sleeps[0] <= IDLE_BACKOFF_BASE
    assert broker.status().complete


def test_idle_polling_backs_off_exponentially_up_to_poll(tmp_path):
    """Satellite acceptance: idle sleeps grow from IDLE_BACKOFF_BASE toward
    --poll (never past it), carry jitter, and emit one WorkerIdle event per
    sleep.  Hundreds of idle workers must not hammer the store in
    lock-step at a fixed --poll cadence."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "broker", lease_ttl=3600.0,
                            clock=clock)
    broker.submit(small_plan(shards=1))
    peer_lease = broker.lease("peer")
    assert peer_lease is not None
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        if len(sleeps) == 12:  # the peer finally posts; the queue drains
            broker.post(peer_lease, run_manifest(peer_lease.manifest))

    sink = AggregatingSink()
    worker = ShardWorker(broker, ManifestExecutor(), worker_id="idler",
                         poll=1.0, heartbeat=0, sleep=fake_sleep, sink=sink)
    assert worker.run() == []  # the peer posted; nothing left to execute
    assert len(sleeps) == 12
    # Jittered exponential growth: while the nominal delay (base * 2^n) is
    # still below the --poll cap it doubles each round, and jitter within
    # [0.5, 1.0) cannot undo a doubling — so that prefix is nondecreasing.
    below_cap = [s for n, s in enumerate(sleeps)
                 if IDLE_BACKOFF_BASE * (2.0 ** n) < 1.0]
    assert len(below_cap) >= 4
    for earlier, later in zip(below_cap, below_cap[1:]):
        assert later >= earlier
    # Starts at the base, never exceeds min(poll, IDLE_BACKOFF_CAP), and
    # actually grows an order of magnitude before settling at the cap.
    assert sleeps[0] <= IDLE_BACKOFF_BASE
    assert all(s <= 1.0 for s in sleeps)
    assert max(sleeps) > 10 * sleeps[0]
    # Distinct workers jitter differently (decorrelated fleets).
    other = ShardWorker(broker, ManifestExecutor(), worker_id="other",
                        poll=1.0, heartbeat=0)
    assert worker._backoff_rng.random() != other._backoff_rng.random()
    # One WorkerIdle telemetry event per backoff sleep, with the durations.
    assert sink.count("worker_idle") == 12
    idle = sink.timer("idle_sleep_s")
    assert idle is not None and idle.count == 12
    assert idle.total == pytest.approx(sum(sleeps))


def test_worker_loop_emits_lease_lifecycle_telemetry(tmp_path):
    """LeaseAcquired / LeaseRenewed / ShardPosted flow from a live worker;
    a stolen lease adds LeaseLost + ManifestAbandoned."""
    broker = LocalDirBroker(tmp_path / "queue", lease_ttl=60.0)
    broker.submit(small_plan(shards=2))
    renewed_by_shard = {}

    def note_renewal(lease, ok):
        renewed_by_shard.setdefault(lease.manifest.shard_index,
                                    []).append(ok)

    def wait_for_renewal(manifest):
        # Wait for a renewal of *this* manifest's lease, so every shard is
        # guaranteed at least one heartbeat even when execution is instant.
        wait_until(lambda: renewed_by_shard.get(manifest.shard_index))

    sink = AggregatingSink()
    with use_sink(sink):
        worker = ShardWorker(broker, StubExecutor(before=wait_for_renewal),
                             worker_id="steady-counted", poll=0,
                             heartbeat=0.02, on_renew=note_renewal)
        completed = worker.run()
    assert len(completed) == 2
    assert sink.count("lease_acquired") == 2
    assert sink.count("shard_posted") == 2
    assert sink.count("lease_renewed") >= 2  # one wait per manifest
    assert sink.count("lease_lost") == 0
    assert sink.count("manifest_abandoned") == 0
    assert sink.count("shard_collected") == 0  # nobody collected yet
    broker.collect()
    assert sink.count("shard_collected") == 0  # broker has its own sink...
    with use_sink(sink):
        broker.collect()
    assert sink.count("shard_collected") == 2  # ...resolved at collect time


def test_lost_lease_emits_lease_lost_and_manifest_abandoned(tmp_path):
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "queue", lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    lost = []

    def steal(_manifest):
        clock.advance(100.0)  # the lease expires mid-run
        assert broker.lease("thief") is not None
        wait_until(lambda: len(lost) >= 1)  # heartbeat notices the theft

    sink = AggregatingSink()
    worker = ShardWorker(broker, StubExecutor(before=steal),
                         worker_id="victim-counted", poll=0, heartbeat=0.02,
                         on_renew=lambda lease, ok: lost.append(ok)
                         if not ok else None, sink=sink)
    completed = worker.run()
    assert completed == [] and worker.abandoned == 1
    assert sink.count("lease_acquired") == 1
    assert sink.count("lease_lost") == 1
    assert sink.count("manifest_abandoned") == 1
    assert sink.count("shard_posted") == 0


def test_worker_with_zero_poll_exits_when_nothing_is_leasable(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    assert broker.lease("peer") is not None
    worker = ShardWorker(broker, ManifestExecutor(), worker_id="w", poll=0)
    assert worker.run() == []


def test_worker_and_broker_validate_construction(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    with pytest.raises(ShardError, match="poll"):
        ShardWorker(broker, poll=-1)
    with pytest.raises(ShardError, match="poll"):
        ShardWorker(broker, poll=float("nan"))  # NaN passes every < check
    with pytest.raises(ShardError, match="poll"):
        ShardWorker(broker, poll=float("inf"))
    with pytest.raises(ShardError, match="max_manifests"):
        ShardWorker(broker, max_manifests=0)
    with pytest.raises(ShardError, match="lease_ttl"):
        LocalDirBroker(tmp_path / "b2", lease_ttl=0)
    with pytest.raises(ShardError, match="lease_ttl"):
        InMemoryBroker(lease_ttl=-5)


def test_worker_ids_are_sanitized_in_lease_filenames(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    lease = broker.lease("host/with spaces:and#stuff")
    assert lease is not None
    assert "/" not in lease.token and " " not in lease.token
    leased_files = list((tmp_path / "broker" / "plans" / "default" / "leased").glob("*.lease.*"))
    assert [path.name for path in leased_files] == [lease.token]


def test_default_lease_ttl_is_generous():
    assert DEFAULT_LEASE_TTL >= 300.0


# ----------------------------------------------------------------------
# ArtifactCache accounting under the worker loop
# ----------------------------------------------------------------------
def test_second_worker_sharing_a_cache_dir_reports_zero_misses(tmp_path):
    """Two sequential workers (two queues, one --cache-dir): the first pays
    every rip, the second loads everything from the shared cache."""
    cache_dir = tmp_path / "cache"
    first_broker = LocalDirBroker(tmp_path / "queue-1")
    first_broker.submit(small_plan(shards=2))
    first_executor = ManifestExecutor(cache_dir=cache_dir)
    ShardWorker(first_broker, first_executor, worker_id="w1", poll=0).run()
    first_stats = first_executor.cache_stats()
    # The grid spans two apps; the first worker rips each exactly once.
    assert first_stats["misses"] == len(TASKS)

    second_broker = LocalDirBroker(tmp_path / "queue-2")
    second_broker.submit(small_plan(shards=2))
    second_executor = ManifestExecutor(cache_dir=cache_dir)
    ShardWorker(second_broker, second_executor, worker_id="w2", poll=0).run()
    second_stats = second_executor.cache_stats()
    assert second_stats["misses"] == 0
    assert second_stats["hits"] > 0
    # And the cached run produced the same bytes as the cold one.
    for ours, theirs in zip(first_broker.collect(), second_broker.collect()):
        assert [r.as_dict() for r in ours.results] \
            == [r.as_dict() for r in theirs.results]


def test_cache_counters_aggregate_across_manifests_of_one_worker(tmp_path):
    broker = LocalDirBroker(tmp_path / "queue")
    # trials=2 makes the round-robin deal give every shard all three apps
    # (two hand-written plus the generated one).
    broker.submit(small_plan(shards=2, trials=2))
    executor = ManifestExecutor(cache_dir=tmp_path / "cache")
    ShardWorker(broker, executor, worker_id="w", poll=0).run()
    stats = executor.cache_stats()
    # 2 shards × 3 apps = 6 artefact loads: 3 cold builds + 3 warm loads.
    assert stats["misses"] == 3
    assert stats["hits"] == 3


def test_executor_without_cache_dir_reports_no_stats():
    assert ManifestExecutor().cache_stats() is None


class FlakyRenewBroker:
    """Delegates to a real broker, but renew() raises for a while first."""

    def __init__(self, inner, failures):
        self._inner = inner
        self._failures = failures

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def renew(self, lease):
        if self._failures > 0:
            self._failures -= 1
            raise ShardError("transient storage blip")
        return self._inner.renew(lease)


def test_heartbeat_survives_transient_renew_errors(tmp_path):
    """Regression: a storage blip during one renewal must not abandon the
    manifest — the lease has ttl/3 slack, so the heartbeat retries."""
    clock = FakeClock()
    inner = LocalDirBroker(tmp_path / "queue", lease_ttl=60.0, clock=clock)
    inner.submit(small_plan(shards=1))
    broker = FlakyRenewBroker(inner, failures=2)
    renewals = []

    def long_run(_manifest):
        clock.advance(100.0)
        wait_until(lambda: renewals)  # a renewal after the blips

    worker = ShardWorker(broker, StubExecutor(before=long_run),
                         worker_id="steady", poll=0, heartbeat=0.02,
                         on_renew=lambda lease, ok: renewals.append(ok))
    completed = worker.run()
    assert len(completed) == 1 and worker.abandoned == 0
    assert renewals and all(renewals)  # the blips never surfaced as losses
    assert inner.status().complete


def test_abandoned_manifests_count_toward_max_manifests(tmp_path):
    """Regression: --max-manifests bounds *executions*; an abandoned
    manifest must consume the budget, not extend it."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "queue", lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=2))
    renewals, thief = [], {}

    def stolen_mid_run(manifest):
        clock.advance(61.0)
        thief.setdefault("lease", broker.lease("thief"))
        wait_until(lambda: renewals)

    worker = ShardWorker(broker, StubExecutor(before=stolen_mid_run),
                         worker_id="capped", poll=0, heartbeat=0.02,
                         max_manifests=1,
                         on_renew=lambda lease, ok: renewals.append(ok))
    completed = worker.run()
    # One execution happened (and was abandoned); the cap stops the worker
    # from taking the second shard even though it posted nothing.
    assert completed == [] and worker.abandoned == 1
    assert broker.status().done == 0


# ----------------------------------------------------------------------
# persistent daemon workers and fair-share leasing
# ----------------------------------------------------------------------
def test_daemon_worker_survives_drain_and_serves_two_plans(tmp_path):
    """Acceptance: one --daemon worker, started before any plan exists,
    drains two sequentially submitted named plans without a restart; each
    per-plan collect is bit-identical to the serial run."""
    broker = LocalDirBroker(tmp_path / "broker")
    worker = ShardWorker(broker, ManifestExecutor(), worker_id="resident",
                         poll=0.01, heartbeat=0, daemon=True)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()  # idles against an empty broker, no plan yet

    def plan_done(name):
        plan_stat = broker.status().plan(name)
        return plan_stat is not None and plan_stat.complete

    broker.submit(small_plan(shards=2, trials=1), name="alpha")
    wait_until(lambda: plan_done("alpha"), timeout=30.0)
    assert not worker.stopping  # drained alpha, still serving
    broker.submit(small_plan(shards=3, trials=2), name="beta")
    wait_until(lambda: plan_done("beta"), timeout=30.0)
    worker.stop()
    thread.join(timeout=10.0)
    assert not thread.is_alive() and worker.stopping
    assert set(worker.results_by_plan) == {"alpha", "beta"}
    assert len(worker.results_by_plan["alpha"]) == 2
    assert len(worker.results_by_plan["beta"]) == 3
    for name, trials in (("alpha", 1), ("beta", 2)):
        merged = merge_shard_results(broker.collect(name))
        reference = serial_reference(trials=trials)
        assert set(merged) == set(reference)
        for key in reference:
            assert [r.as_dict() for r in reference[key].results] \
                == [r.as_dict() for r in merged[key].results]


def test_daemon_worker_exits_after_max_idle_s():
    """A daemon with --max-idle-s shuts itself down after that much
    continuous idle time — and a drain resets the idle clock."""
    clock = FakeClock()
    broker = InMemoryBroker(clock=clock)
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        clock.advance(seconds)
        if len(sleeps) == 3:  # work arrives mid-idle: the clock resets
            broker.submit(small_plan(shards=1), name="late")
        if len(sleeps) > 200:
            raise AssertionError("daemon never honoured max_idle_s")

    worker = ShardWorker(broker, StubExecutor(), worker_id="transient",
                         poll=0.5, heartbeat=0, daemon=True,
                         max_idle_s=30.0, clock=clock, sleep=fake_sleep)
    completed = worker.run()  # returns on its own: idle timeout, not stop()
    assert len(completed) == 1  # the late plan was picked up and drained
    assert broker.status().plan("late").complete
    assert not worker.stopping  # self-exit, nobody called stop()
    # It idled well past max_idle_s in total, but only left once the
    # *continuous* idle span after the drain exceeded 30s.
    assert sum(sleeps[3:]) >= 30.0


def test_daemon_requires_positive_poll(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    with pytest.raises(ShardError, match="daemon worker requires poll > 0"):
        ShardWorker(broker, daemon=True, poll=0)
    with pytest.raises(ShardError, match="max_idle_s"):
        ShardWorker(broker, daemon=True, poll=1.0, max_idle_s=0)
    with pytest.raises(ShardError, match="max_idle_s"):
        ShardWorker(broker, daemon=True, poll=1.0,
                    max_idle_s=float("inf"))


def test_fair_share_prevents_starvation_by_a_huge_plan():
    """Satellite acceptance: a 1000-shard plan next to a 3-shard plan on
    one broker — fair-share interleaving leases the small plan's last
    shard within the first ``2 × plans`` lease rounds instead of queueing
    it behind a thousand big-plan shards."""
    broker = InMemoryBroker()
    broker.submit(plan_shards(1000, seed=DEFAULT_SEED, trials=250,
                              setting_keys=SETTINGS, task_ids=TASKS),
                  name="big")
    broker.submit(small_plan(shards=3, trials=1), name="small")
    calls_until_small_fully_leased = None
    for call in range(1, 13):  # 2 plans x 3 small shards x safety margin
        lease = broker.lease(f"w{call % 4}")
        assert lease is not None
        if broker.status().plan("small").leased == 3:
            calls_until_small_fully_leased = call
            break
    assert calls_until_small_fully_leased is not None
    # Strict alternation means the small plan is fully leased by call 6;
    # the assertion leaves headroom but still forbids big-plan starvation.
    assert calls_until_small_fully_leased <= 12
    big_stat = broker.status().plan("big")
    assert big_stat.leased >= 3  # the big plan kept making progress too
