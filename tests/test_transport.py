"""Tests for the broker/worker shard transport.

Covers the queue contract on both backends, the failure modes a distributed
deployment actually hits — worker crash mid-lease (lease expiry + reclaim),
duplicate result posts, corrupt files in the broker directory — and the
ArtifactCache hit/miss accounting of the worker loop.
"""

import json

import pytest

from repro.bench.metrics import aggregate
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    DEFAULT_SEED,
    setting_by_key,
)
from repro.bench.shard import (
    ManifestExecutor,
    ShardError,
    ShardResults,
    merge_shard_results,
    plan_shards,
)
from repro.bench.tasks import task_by_id
from repro.bench.transport import (
    DEFAULT_LEASE_TTL,
    BrokerStatus,
    InMemoryBroker,
    LocalDirBroker,
    ShardWorker,
)

TASKS = ("ppt-01-blue-background", "word-02-landscape")
SETTINGS = ("gui-gpt5-medium", "dmi-gpt5-medium")


class FakeClock:
    """A controllable clock so lease expiry needs no real sleeping."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def small_plan(shards=2, seed=DEFAULT_SEED, trials=1):
    return plan_shards(shards, seed=seed, trials=trials,
                       setting_keys=SETTINGS, task_ids=TASKS)


def make_broker(kind, tmp_path, **kwargs):
    if kind == "memory":
        return InMemoryBroker(**kwargs)
    return LocalDirBroker(tmp_path / "broker", **kwargs)


BROKER_KINDS = ("memory", "dir")


# ----------------------------------------------------------------------
# the queue contract (both backends)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", BROKER_KINDS)
def test_submit_lease_post_collect_round_trip(kind, tmp_path):
    broker = make_broker(kind, tmp_path)
    plan = small_plan(shards=2)
    broker.submit(plan)
    assert broker.status() == BrokerStatus(queued=2, leased=0, done=0,
                                           shard_count=2)
    executor = ManifestExecutor()
    seen = []
    while True:
        lease = broker.lease("worker-a")
        if lease is None:
            break
        seen.append(lease.manifest.shard_index)
        assert lease.worker_id == "worker-a"
        assert broker.post(lease, executor.run(lease.manifest)) is True
    assert sorted(seen) == [0, 1]
    status = broker.status()
    assert status == BrokerStatus(queued=0, leased=0, done=2, shard_count=2)
    assert status.complete and status.drained
    merged = merge_shard_results(broker.collect())
    reference = BenchmarkRunner(BenchmarkConfig(
        trials=1, tasks=[task_by_id(t) for t in TASKS])).run_settings(
            [setting_by_key(k) for k in SETTINGS])
    for key in reference:
        assert [r.as_dict() for r in reference[key].results] \
            == [r.as_dict() for r in merged[key].results]


@pytest.mark.parametrize("kind", BROKER_KINDS)
def test_lease_moves_work_in_flight(kind, tmp_path):
    broker = make_broker(kind, tmp_path)
    broker.submit(small_plan(shards=2))
    lease = broker.lease("worker-a")
    assert lease is not None
    assert broker.status() == BrokerStatus(queued=1, leased=1, done=0,
                                           shard_count=2)
    # The leased manifest is not offered to a second worker.
    other = broker.lease("worker-b")
    assert other is not None and other.manifest.shard_index \
        != lease.manifest.shard_index
    assert broker.lease("worker-c") is None


@pytest.mark.parametrize("kind", BROKER_KINDS)
def test_broker_refuses_second_plan_and_unsubmitted_use(kind, tmp_path):
    broker = make_broker(kind, tmp_path)
    with pytest.raises(ShardError, match="no plan has been submitted"):
        broker.lease("worker-a")
    with pytest.raises(ShardError, match="no plan has been submitted"):
        broker.status()
    with pytest.raises(ShardError, match="no plan has been submitted"):
        broker.collect()
    broker.submit(small_plan(shards=2))
    with pytest.raises(ShardError, match="already holds a plan"):
        broker.submit(small_plan(shards=2))


@pytest.mark.parametrize("kind", BROKER_KINDS)
def test_post_rejects_results_from_a_foreign_plan(kind, tmp_path):
    broker = make_broker(kind, tmp_path)
    broker.submit(small_plan(shards=1))
    lease = broker.lease("worker-a")
    alien = small_plan(shards=1, seed=DEFAULT_SEED + 1)
    foreign = ManifestExecutor().run(alien.manifests[0])
    with pytest.raises(ShardError, match="'seed'"):
        broker.post(lease, foreign)


@pytest.mark.parametrize("kind", BROKER_KINDS)
def test_post_rejects_out_of_range_shard_index(kind, tmp_path):
    """Same plan identity but an impossible shard index: both backends must
    refuse, or status() could report complete with a real shard missing."""
    import dataclasses

    broker = make_broker(kind, tmp_path)
    broker.submit(small_plan(shards=1))
    lease = broker.lease("worker-a")
    shard = ManifestExecutor().run(lease.manifest)
    rogue = ShardResults(
        manifest=dataclasses.replace(shard.manifest, shard_index=5),
        results=shard.results)
    with pytest.raises(ShardError, match="out of range"):
        broker.post(lease, rogue)
    assert broker.status().done == 0


# ----------------------------------------------------------------------
# failure injection: worker crash mid-lease (expiry + reclaim)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", BROKER_KINDS)
def test_crashed_worker_lease_expires_and_is_reclaimed(kind, tmp_path):
    clock = FakeClock()
    broker = make_broker(kind, tmp_path, lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    # worker-a leases the only manifest and "crashes" (never posts).
    crashed = broker.lease("worker-a")
    assert crashed is not None
    assert broker.lease("worker-b") is None  # still leased, nothing free
    assert broker.status().leased == 1
    clock.advance(59.9)
    assert broker.lease("worker-b") is None  # not expired yet
    clock.advance(0.2)
    reclaimed = broker.lease("worker-b")  # expired: reclaimed and re-leased
    assert reclaimed is not None
    assert reclaimed.manifest == crashed.manifest
    assert reclaimed.worker_id == "worker-b"
    broker.post(reclaimed, ManifestExecutor().run(reclaimed.manifest))
    assert broker.status().complete
    assert list(merge_shard_results(broker.collect()))  # merges cleanly


@pytest.mark.parametrize("kind", BROKER_KINDS)
def test_straggler_post_after_reclaim_is_harmless(kind, tmp_path):
    """The crashed worker was only slow: it posts after its lease was
    reclaimed and re-run.  First write wins; the queue still drains."""
    clock = FakeClock()
    broker = make_broker(kind, tmp_path, lease_ttl=60.0, clock=clock)
    broker.submit(small_plan(shards=1))
    executor = ManifestExecutor()
    slow = broker.lease("worker-slow")
    slow_results = executor.run(slow.manifest)
    clock.advance(61.0)
    fast = broker.lease("worker-fast")
    assert fast is not None
    assert broker.post(slow, slow_results) is True  # straggler lands first
    assert broker.post(fast, executor.run(fast.manifest)) is False  # no-op
    status = broker.status()
    assert status == BrokerStatus(queued=0, leased=0, done=1, shard_count=1)
    assert list(merge_shard_results(broker.collect()))


@pytest.mark.parametrize("kind", BROKER_KINDS)
def test_duplicate_result_post_is_idempotent(kind, tmp_path):
    broker = make_broker(kind, tmp_path)
    broker.submit(small_plan(shards=2))
    executor = ManifestExecutor()
    lease = broker.lease("worker-a")
    results = executor.run(lease.manifest)
    assert broker.post(lease, results) is True
    assert broker.post(lease, results) is False  # duplicate: no-op
    assert broker.status().done == 1
    lease = broker.lease("worker-a")
    broker.post(lease, executor.run(lease.manifest))
    merged = merge_shard_results(broker.collect())
    for outcome in merged.values():
        assert len(outcome.results) == len(TASKS)  # nothing double-counted


def test_worker_crash_between_two_real_workers_still_bit_identical(tmp_path):
    """End-to-end reclaim on the directory broker: a worker leases shard 0
    and dies; after expiry a healthy worker drains everything; the collected
    merge is still bit-identical to serial."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "broker", lease_ttl=30.0, clock=clock)
    broker.submit(small_plan(shards=2))
    assert broker.lease("doomed") is not None  # crashes here
    clock.advance(31.0)
    worker = ShardWorker(broker, ManifestExecutor(), worker_id="healthy",
                         poll=0)
    completed = worker.run()
    assert len(completed) == 2
    merged = merge_shard_results(broker.collect())
    reference = BenchmarkRunner(BenchmarkConfig(
        trials=1, tasks=[task_by_id(t) for t in TASKS])).run_settings(
            [setting_by_key(k) for k in SETTINGS])
    for key in reference:
        assert [r.as_dict() for r in reference[key].results] \
            == [r.as_dict() for r in merged[key].results]


# ----------------------------------------------------------------------
# failure injection: corrupt files in the broker directory
# ----------------------------------------------------------------------
def test_corrupt_queued_manifest_raises_clean_shard_error(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    manifest_path = next((tmp_path / "broker" / "queued").glob("shard-*.json"))
    manifest_path.write_text("{truncated", encoding="utf-8")
    with pytest.raises(ShardError, match="not valid JSON") as excinfo:
        broker.lease("worker-a")
    assert manifest_path.name in str(excinfo.value)  # names the file


def test_truncated_done_results_raise_clean_shard_error(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    lease = broker.lease("worker-a")
    broker.post(lease, ManifestExecutor().run(lease.manifest))
    done_path = next((tmp_path / "broker" / "done").glob("shard-*.json"))
    payload = json.loads(done_path.read_text())
    payload["results"] = payload["results"][:-1]
    done_path.write_text(json.dumps(payload))
    with pytest.raises(ShardError, match="specs but") as excinfo:
        broker.collect()
    assert str(done_path) in str(excinfo.value)


def test_corrupt_plan_header_raises_clean_shard_error(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    plan_path = tmp_path / "broker" / "plan.json"
    plan_path.write_text("not json at all")
    with pytest.raises(ShardError, match="not valid JSON"):
        broker.status()
    header = {"kind": "repro-broker-plan", "format_version": 1, "seed": 11}
    plan_path.write_text(json.dumps(header))
    with pytest.raises(ShardError, match="missing required field "
                                         "'shard_count'") as excinfo:
        broker.status()
    assert str(plan_path) in str(excinfo.value)


def test_malformed_lease_filename_raises_clean_shard_error(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    bogus = tmp_path / "broker" / "leased" / "shard-000-of-001.json.lease.soon.w"
    bogus.write_text("{}")
    with pytest.raises(ShardError, match="malformed lease filename"):
        broker.status()


# ----------------------------------------------------------------------
# the worker pull loop
# ----------------------------------------------------------------------
def test_worker_drains_queue_and_respects_max_manifests(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=3, trials=2))
    first = ShardWorker(broker, ManifestExecutor(), worker_id="w0", poll=0,
                        max_manifests=1)
    assert len(first.run()) == 1
    assert broker.status().done == 1
    rest = ShardWorker(broker, ManifestExecutor(), worker_id="w1", poll=0)
    completed = rest.run()
    assert len(completed) == 2
    assert broker.status().complete
    assert {shard.manifest.shard_index for shard in completed} == {1, 2}


def test_worker_polls_while_a_peer_holds_a_lease(tmp_path):
    """queued=0 but leased>0: a polling worker waits (the peer may crash and
    its lease becomes reclaimable) instead of exiting early."""
    clock = FakeClock()
    broker = LocalDirBroker(tmp_path / "broker", lease_ttl=10.0, clock=clock)
    broker.submit(small_plan(shards=1))
    assert broker.lease("peer") is not None  # peer holds the only manifest
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        clock.advance(6.0)  # two sleeps push past the 10s ttl

    worker = ShardWorker(broker, ManifestExecutor(), worker_id="patient",
                         poll=2.5, sleep=fake_sleep)
    completed = worker.run()
    assert len(completed) == 1  # reclaimed the peer's manifest and ran it
    assert sleeps and all(s == 2.5 for s in sleeps)
    assert broker.status().complete


def test_worker_with_zero_poll_exits_when_nothing_is_leasable(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    assert broker.lease("peer") is not None
    worker = ShardWorker(broker, ManifestExecutor(), worker_id="w", poll=0)
    assert worker.run() == []


def test_worker_and_broker_validate_construction(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    with pytest.raises(ShardError, match="poll"):
        ShardWorker(broker, poll=-1)
    with pytest.raises(ShardError, match="poll"):
        ShardWorker(broker, poll=float("nan"))  # NaN passes every < check
    with pytest.raises(ShardError, match="poll"):
        ShardWorker(broker, poll=float("inf"))
    with pytest.raises(ShardError, match="max_manifests"):
        ShardWorker(broker, max_manifests=0)
    with pytest.raises(ShardError, match="lease_ttl"):
        LocalDirBroker(tmp_path / "b2", lease_ttl=0)
    with pytest.raises(ShardError, match="lease_ttl"):
        InMemoryBroker(lease_ttl=-5)


def test_worker_ids_are_sanitized_in_lease_filenames(tmp_path):
    broker = LocalDirBroker(tmp_path / "broker")
    broker.submit(small_plan(shards=1))
    lease = broker.lease("host/with spaces:and#stuff")
    assert lease is not None
    assert "/" not in lease.token and " " not in lease.token
    leased_files = list((tmp_path / "broker" / "leased").glob("*.lease.*"))
    assert [path.name for path in leased_files] == [lease.token]


def test_default_lease_ttl_is_generous():
    assert DEFAULT_LEASE_TTL >= 300.0


# ----------------------------------------------------------------------
# ArtifactCache accounting under the worker loop
# ----------------------------------------------------------------------
def test_second_worker_sharing_a_cache_dir_reports_zero_misses(tmp_path):
    """Two sequential workers (two queues, one --cache-dir): the first pays
    every rip, the second loads everything from the shared cache."""
    cache_dir = tmp_path / "cache"
    first_broker = LocalDirBroker(tmp_path / "queue-1")
    first_broker.submit(small_plan(shards=2))
    first_executor = ManifestExecutor(cache_dir=cache_dir)
    ShardWorker(first_broker, first_executor, worker_id="w1", poll=0).run()
    first_stats = first_executor.cache_stats()
    # The grid spans two apps; the first worker rips each exactly once.
    assert first_stats["misses"] == len(TASKS)

    second_broker = LocalDirBroker(tmp_path / "queue-2")
    second_broker.submit(small_plan(shards=2))
    second_executor = ManifestExecutor(cache_dir=cache_dir)
    ShardWorker(second_broker, second_executor, worker_id="w2", poll=0).run()
    second_stats = second_executor.cache_stats()
    assert second_stats["misses"] == 0
    assert second_stats["hits"] > 0
    # And the cached run produced the same bytes as the cold one.
    for ours, theirs in zip(first_broker.collect(), second_broker.collect()):
        assert [r.as_dict() for r in ours.results] \
            == [r.as_dict() for r in theirs.results]


def test_cache_counters_aggregate_across_manifests_of_one_worker(tmp_path):
    broker = LocalDirBroker(tmp_path / "queue")
    # trials=2 makes the round-robin deal give every shard both apps.
    broker.submit(small_plan(shards=2, trials=2))
    executor = ManifestExecutor(cache_dir=tmp_path / "cache")
    ShardWorker(broker, executor, worker_id="w", poll=0).run()
    stats = executor.cache_stats()
    # 2 shards × 2 apps = 4 artefact loads: 2 cold builds + 2 warm loads.
    assert stats["misses"] == 2
    assert stats["hits"] == 2


def test_executor_without_cache_dir_reports_no_stats():
    assert ManifestExecutor().cache_stats() is None
