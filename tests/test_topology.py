"""Tests for decycling, externalization, forest construction and serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ripping.ung import NavigationGraph, UNGNode, VIRTUAL_ROOT_ID
from repro.topology.core import CoreTopologyConfig, extract_core
from repro.topology.decycle import decycle
from repro.topology.externalize import (
    ExternalizationConfig,
    externalized_only_size,
    full_clone_size,
    plan_externalization,
)
from repro.topology.forest import ForestBuildError, build_forest
from repro.topology.query import FULL_FOREST, QueryEngine
from repro.topology.serialize import SerializationConfig, leaf_catalog, serialize_forest, serialize_node
from repro.uia.control_types import ControlType


# ----------------------------------------------------------------------
# graph builders
# ----------------------------------------------------------------------
def graph_from_edges(edges, root_children):
    graph = NavigationGraph(app_name="synthetic")
    nodes = {VIRTUAL_ROOT_ID}
    for pair in edges:
        nodes.update(pair)
    for node_id in sorted(nodes - {VIRTUAL_ROOT_ID}):
        graph.add_node(UNGNode(node_id=node_id, name=node_id, control_type=ControlType.BUTTON))
    for child in root_children:
        graph.add_edge(VIRTUAL_ROOT_ID, child)
    for source, target in edges:
        if source == "ROOT":
            continue
        graph.add_edge(source, target)
    return graph


def diamond_with_cycle():
    """ROOT -> a -> {b, c} -> d (merge), d -> a (cycle), d -> e."""
    edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "a"), ("d", "e")]
    return graph_from_edges(edges, root_children=["a"])


# ----------------------------------------------------------------------
# decycle
# ----------------------------------------------------------------------
def test_decycle_removes_back_edges_and_preserves_reachability():
    graph = diamond_with_cycle()
    assert graph.has_cycle()
    dag = decycle(graph)
    assert dag.is_acyclic()
    assert ("d", "a") in dag.removed_back_edges
    assert dag.nodes() >= {"a", "b", "c", "d", "e"}


def test_decycle_drops_unreachable_nodes():
    graph = diamond_with_cycle()
    graph.add_node(UNGNode(node_id="island", name="island", control_type=ControlType.BUTTON))
    dag = decycle(graph)
    assert "island" in dag.unreachable
    assert "island" not in dag.nodes()


def test_topological_order_parents_before_children():
    dag = decycle(diamond_with_cycle())
    order = dag.topological_order()
    position = {node: i for i, node in enumerate(order)}
    for source, targets in dag.successors.items():
        for target in targets:
            assert position[source] < position[target]


def test_in_degree_identifies_merge_nodes():
    dag = decycle(diamond_with_cycle())
    assert dag.in_degree()["d"] == 2


# ----------------------------------------------------------------------
# externalization
# ----------------------------------------------------------------------
def test_low_threshold_externalizes_merge_node():
    dag = decycle(diamond_with_cycle())
    plan = plan_externalization(dag, ExternalizationConfig(clone_cost_threshold=0))
    assert "d" in plan.externalized
    assert plan.clone_costs["d"] >= 1


def test_high_threshold_clones_instead():
    dag = decycle(diamond_with_cycle())
    plan = plan_externalization(dag, ExternalizationConfig(clone_cost_threshold=1000))
    assert plan.externalized == set()


def test_estimated_total_nodes_matches_built_forest():
    graph = diamond_with_cycle()
    dag = decycle(graph)
    for threshold in (0, 1000):
        plan = plan_externalization(dag, ExternalizationConfig(clone_cost_threshold=threshold))
        forest = build_forest(graph, dag=dag, plan=plan)
        # reference nodes are extra bookkeeping nodes not included in the
        # reverse-topological size estimate of shared subtrees
        assert forest.node_count() >= plan.estimated_total_nodes - len(forest.entry_map)


def test_clone_size_bounds():
    dag = decycle(diamond_with_cycle())
    assert full_clone_size(dag) >= externalized_only_size(dag) - 4
    assert full_clone_size(dag) >= len(dag.nodes())


def test_node_ceiling_is_enforced():
    dag = decycle(diamond_with_cycle())
    with pytest.raises(ValueError):
        plan_externalization(dag, ExternalizationConfig(clone_cost_threshold=10**9,
                                                        max_total_nodes=3))


# ----------------------------------------------------------------------
# forest invariants
# ----------------------------------------------------------------------
def test_forest_paths_are_unique_and_acyclic():
    graph = diamond_with_cycle()
    forest = build_forest(graph, ExternalizationConfig(clone_cost_threshold=0))
    for node in forest.iter_all_nodes():
        # every node has exactly one parent (tree property)
        assert node.parent is None or node in node.parent.children
    # the externalized merge node becomes a shared subtree with 2 references
    assert len(forest.shared_subtrees) == 1
    subtree_id = next(iter(forest.shared_subtrees))
    assert len(forest.references_to_subtree(subtree_id)) == 2


def test_forest_control_path_for_main_tree_and_subtree():
    graph = diamond_with_cycle()
    forest = build_forest(graph, ExternalizationConfig(clone_cost_threshold=0))
    b = forest.find_by_name("b")[0]
    assert forest.control_path(b.node_id) == ["a", "b"]
    e = forest.find_by_name("e")[0]          # lives inside the shared subtree of d
    path = forest.control_path(e.node_id)
    assert path[-2:] == ["d", "e"]
    assert path[0] == "a"


def test_forest_entry_ref_selects_entry_path():
    graph = diamond_with_cycle()
    forest = build_forest(graph, ExternalizationConfig(clone_cost_threshold=0))
    subtree_id = next(iter(forest.shared_subtrees))
    refs = forest.references_to_subtree(subtree_id)
    e = forest.find_by_name("e")[0]
    for ref in refs:
        path = forest.control_path(e.node_id, entry_ref_ids=[ref.node_id])
        parent_name = ref.parent.name
        assert parent_name in path


def test_forest_cloning_duplicates_when_not_externalized():
    graph = diamond_with_cycle()
    forest = build_forest(graph, ExternalizationConfig(clone_cost_threshold=1000))
    # d (and its child e) appear twice: once under b, once under c
    assert len(forest.find_by_name("d")) == 2
    assert len(forest.find_by_name("e")) == 2
    assert forest.shared_subtrees == {}


def test_forest_node_ids_are_consecutive_and_unique():
    forest = build_forest(diamond_with_cycle())
    ids = sorted(n.node_id for n in forest.iter_all_nodes())
    assert ids == list(range(1, len(ids) + 1))


def test_unknown_node_lookup_raises():
    forest = build_forest(diamond_with_cycle())
    with pytest.raises(KeyError):
        forest.node(10**6)


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def test_serialize_node_schema_contains_name_type_and_id():
    forest = build_forest(diamond_with_cycle())
    a = forest.find_by_name("a")[0]
    text = serialize_node(a)
    assert text.startswith("a(Button)_")
    assert "[" in text and "]" in text


def test_serialize_forest_renders_subtrees_and_entry_map():
    forest = build_forest(diamond_with_cycle(), ExternalizationConfig(clone_cost_threshold=0))
    text = serialize_forest(forest)
    assert "## Main tree" in text
    assert "## Shared subtrees" in text
    assert "entry map" in text.lower()
    assert "{ref:S1}" in text


def test_serialize_escapes_structural_characters():
    graph = NavigationGraph()
    graph.add_node(UNGNode(node_id="weird", name="a(b)[c],d", control_type=ControlType.BUTTON))
    graph.add_edge(VIRTUAL_ROOT_ID, "weird")
    forest = build_forest(graph)
    text = serialize_forest(forest)
    assert "\\(" in text and "\\[" in text and "\\," in text


def test_serialize_max_depth_marks_hidden_children():
    forest = build_forest(diamond_with_cycle(), ExternalizationConfig(clone_cost_threshold=1000))
    text = serialize_node(forest.main_root, max_depth=1)
    assert "more via further_query" in text


def test_leaf_catalog_lists_functional_controls_with_paths():
    forest = build_forest(diamond_with_cycle(), ExternalizationConfig(clone_cost_threshold=1000))
    catalog = leaf_catalog(forest)
    assert any("a > b > d > e" in path for path in catalog.values())


# ----------------------------------------------------------------------
# core extraction and query-on-demand
# ----------------------------------------------------------------------
def test_core_depth_limit_prunes_deep_nodes():
    graph = graph_from_edges(
        [("n0", "n1"), ("n1", "n2"), ("n2", "n3"), ("n3", "n4"), ("n4", "n5")],
        root_children=["n0"])
    forest = build_forest(graph)
    core = extract_core(forest, CoreTopologyConfig(max_depth=3))
    deep = forest.find_by_name("n5")[0]
    shallow = forest.find_by_name("n1")[0]
    assert core.contains(shallow.node_id)
    assert not core.contains(deep.node_id)
    assert core.pruned_node_count() >= 2


def test_core_prunes_large_homogeneous_enumerations_only():
    graph = NavigationGraph()
    graph.add_node(UNGNode(node_id="fonts", name="Fonts", control_type=ControlType.COMBO_BOX))
    graph.add_edge(VIRTUAL_ROOT_ID, "fonts")
    for index in range(60):
        node_id = f"font{index}"
        graph.add_node(UNGNode(node_id=node_id, name=node_id, control_type=ControlType.LIST_ITEM))
        graph.add_edge("fonts", node_id)
    forest = build_forest(graph)
    core = extract_core(forest, CoreTopologyConfig(enumeration_threshold=40,
                                                   enumeration_sample=4))
    kept = [n for n in forest.find_by_name("font", exact=False, leaves_only=True)
            if core.contains(n.node_id)]
    assert len(kept) == 4
    # the virtual root itself is never treated as an enumeration
    assert core.contains(forest.main_root.node_id)


def test_core_manual_prune_names():
    forest = build_forest(diamond_with_cycle())
    core = extract_core(forest, CoreTopologyConfig(manual_prune_names={"b"}))
    b = forest.find_by_name("b")[0]
    assert not core.contains(b.node_id)


def test_query_engine_targeted_and_global_queries():
    forest = build_forest(diamond_with_cycle())
    core = extract_core(forest, CoreTopologyConfig(max_depth=1))
    engine = QueryEngine(forest, core)
    assert engine.initial_prompt_text()
    b = forest.find_by_name("b")[0]
    result = engine.further_query([b.node_id])
    assert "b(Button)" in result.text
    assert result.tokens > 0
    everything = engine.further_query(FULL_FOREST)
    assert everything.is_global
    unknown = engine.further_query([10**6])
    assert unknown.unknown_ids == [10**6]
    report = engine.coverage_report()
    assert report["queries_answered"] == 3
    assert engine.total_query_tokens() >= result.tokens


# ----------------------------------------------------------------------
# property-based: the pipeline holds its invariants on random DAG-ish graphs
# ----------------------------------------------------------------------
@st.composite
def random_graph(draw):
    node_count = draw(st.integers(min_value=2, max_value=18))
    names = [f"n{i}" for i in range(node_count)]
    edges = set()
    # random forward edges (guaranteeing reachability chain) + random extras
    for i in range(1, node_count):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        edges.add((names[parent], names[i]))
    extra = draw(st.lists(st.tuples(st.integers(0, node_count - 1),
                                    st.integers(0, node_count - 1)), max_size=12))
    for a, b in extra:
        if a != b:
            edges.add((names[a], names[b]))
    graph = graph_from_edges(sorted(edges), root_children=[names[0]])
    return graph


@settings(max_examples=40, deadline=None)
@given(random_graph(), st.integers(min_value=0, max_value=50))
def test_pipeline_invariants_on_random_graphs(graph, threshold):
    dag = decycle(graph)
    assert dag.is_acyclic()
    plan = plan_externalization(dag, ExternalizationConfig(clone_cost_threshold=threshold))
    forest = build_forest(graph, dag=dag, plan=plan)
    # 1. ids unique and consecutive
    ids = sorted(n.node_id for n in forest.iter_all_nodes())
    assert ids == list(range(1, len(ids) + 1))
    # 2. every reachable UNG node is represented at least once
    reachable = graph.reachable_from_root() - {VIRTUAL_ROOT_ID}
    represented = {n.control_id for n in forest.iter_all_nodes() if n.control_id}
    assert reachable <= represented
    # 3. every non-reference node has a resolvable, cycle-free control path
    for node in forest.iter_all_nodes():
        if node.is_reference or node.control_id == VIRTUAL_ROOT_ID:
            continue
        path = forest.control_path(node.node_id)
        assert path, f"empty path for {node}"
        assert path[-1] == node.control_id
        assert len(path) == len(set(path)) or len(path) <= len(set(path)) + 2
    # 4. references point at existing subtrees
    for ref_id, subtree_id in forest.entry_map.items():
        assert subtree_id in forest.shared_subtrees
        assert forest.node(ref_id).is_reference
