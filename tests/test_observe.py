"""Tests for the observability plane: trace correlation, fleet
aggregation, OpenMetrics export and the autoscaling advisor.

The PR 10 acceptance criteria live here: trial trace ids are
byte-identical across execution paths, a chaos run yields one complete
reconstructable trace per trial (retry spans included), the fleet
aggregator merges multiple worker snapshots with staleness flags, and
the OpenMetrics textfile round-trips through a parser check.
"""

import json
import time

import pytest

from broker_contract import (
    DEFAULT_SEED,
    SETTINGS,
    TASKS,
    make_chaos_broker,
    small_plan,
)
from repro.bench.engine import TrialSpec, trial_seed
from repro.bench.observe import (
    AdvisorPolicy,
    FleetAggregator,
    FleetGauges,
    ObserveError,
    WorkerSnapshot,
    build_trace,
    manifest_trace_id,
    parse_openmetrics,
    plan_trace_id,
    render_openmetrics,
    render_trace,
    span_id_for,
    trial_trace_id,
    write_promfile,
)
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    setting_by_key,
)
from repro.bench.shard import ManifestExecutor, plan_shards
from repro.bench.tasks import task_by_id
from repro.bench.telemetry import (
    JsonlSink,
    METRICS_SCHEMA_VERSION,
    read_jsonl_events,
    use_sink,
)
from repro.bench.transport import LocalDirBroker, ShardWorker
from repro.cli import main

#: A deliberately small grid: trace identity is about *which* trial, not
#: how many, so two tasks under one setting keep these runs quick.
GRID_TASKS = TASKS[:2]
GRID_SETTINGS = SETTINGS[:1]


def grid_specs(seed=DEFAULT_SEED, trials=1):
    return [TrialSpec(task_id=task_id, setting_key=setting_key, trial=trial,
                      seed=trial_seed(seed, task_id, setting_key, trial))
            for task_id in GRID_TASKS
            for setting_key in GRID_SETTINGS
            for trial in range(trials)]


def grid_plan(shards=2, seed=DEFAULT_SEED, trials=1):
    return plan_shards(shards, seed=seed, trials=trials,
                       setting_keys=GRID_SETTINGS, task_ids=GRID_TASKS)


def run_serial(path, seed=DEFAULT_SEED):
    runner = BenchmarkRunner(BenchmarkConfig(
        trials=1, seed=seed,
        tasks=[task_by_id(task_id) for task_id in GRID_TASKS]))
    sink = JsonlSink(path)
    try:
        with use_sink(sink):
            runner.run_settings([setting_by_key(key)
                                 for key in GRID_SETTINGS])
    finally:
        sink.close()
    return read_jsonl_events(path)


def trial_events(events, name="trial_finished"):
    return [event for event in events if event.get("event") == name]


# ----------------------------------------------------------------------
# trace id derivation
# ----------------------------------------------------------------------
def test_trace_ids_are_deterministic_and_derived_from_identity():
    spec = grid_specs()[0]
    tid = trial_trace_id(spec)
    assert len(tid) == 16 and int(tid, 16) >= 0
    assert trial_trace_id(spec) == tid
    other = TrialSpec(task_id=spec.task_id, setting_key=spec.setting_key,
                      trial=spec.trial + 1,
                      seed=trial_seed(DEFAULT_SEED, spec.task_id,
                                      spec.setting_key, spec.trial + 1))
    assert trial_trace_id(other) != tid
    assert spec.trace_id == tid  # TrialSpec exposes it as a property

    plan = grid_plan(shards=2)
    first, second = plan.manifests[0], plan.manifests[1]
    assert manifest_trace_id(first) != manifest_trace_id(second)
    assert first.trace_id == manifest_trace_id(first)
    # Plan ids fold the broker-side *name* in, so two tenants submitting
    # the same grid under different names stay distinguishable.
    assert plan_trace_id("nightly", first) != plan_trace_id("canary", first)
    # ...but every manifest of one plan derives the same plan id.
    assert plan_trace_id("nightly", first) == plan_trace_id("nightly",
                                                            second)
    assert span_id_for(tid, "trial") == span_id_for(tid, "trial")
    assert span_id_for(tid, "trial") != span_id_for(tid, "lease")


def test_serial_and_broker_paths_agree_on_trial_trace_ids(tmp_path):
    """Tentpole acceptance: the same trial carries the same trace id
    whether it ran serially in-process or off a broker in a worker."""
    serial = trial_events(run_serial(tmp_path / "serial.jsonl"))
    broker = LocalDirBroker(tmp_path / "queue")
    worker_log = tmp_path / "worker.jsonl"
    sink = JsonlSink(worker_log)
    try:
        with use_sink(sink):
            broker.submit(grid_plan(shards=2))
            ShardWorker(broker, ManifestExecutor(),
                        worker_id="trace-parity", poll=0,
                        heartbeat=0).run()
            broker.collect()
    finally:
        sink.close()
    distributed = trial_events(read_jsonl_events(worker_log))

    expected = {spec.trace_id for spec in grid_specs()}
    assert {event["trace_id"] for event in serial} == expected
    assert {event["trace_id"] for event in distributed} == expected
    # Span ids agree too: the trial root span is derived, not random.
    by_trace = {event["trace_id"]: event["span_id"] for event in serial}
    for event in distributed:
        assert event["span_id"] == by_trace[event["trace_id"]]
    # The broker-path trial is parented to its worker's lease span; the
    # serial trial has no ambient parent.  Same trace, different journey.
    assert all(event["parent_span_id"] for event in distributed)
    assert not any(event.get("parent_span_id") for event in serial)


# ----------------------------------------------------------------------
# chaos completeness: one full trace per trial, retries included
# ----------------------------------------------------------------------
def test_chaos_run_yields_one_complete_trace_per_trial(tmp_path):
    """Acceptance: under a seeded hostile fault schedule, every trial's
    journey — submit, lease, execute, post, collect, retries — comes back
    out of the merged JSONL as one linked trace."""
    log = tmp_path / "chaos.jsonl"
    sink = JsonlSink(log)
    try:
        with use_sink(sink):
            broker = make_chaos_broker("store-fs", tmp_path)
            broker.submit(grid_plan(shards=2))
            ShardWorker(broker, ManifestExecutor(), worker_id="chaos-w",
                        poll=0, heartbeat=0).run()
            broker.collect()
    finally:
        sink.close()
    events = read_jsonl_events(log)
    # The storm actually rained: bounded retries fired and were traced.
    retries = [event for event in events
               if event.get("event") == "store_retry"]
    assert retries, "hostile schedule produced no store retries"
    assert any(event.get("trace_id") for event in retries)

    specs = grid_specs()
    for spec in specs:
        trace = build_trace(events, spec.trace_id)
        names = trace.event_names()
        assert {"plan_submitted", "lease_acquired", "trial_started",
                "trial_finished", "shard_posted",
                "shard_collected"} <= names, \
            f"incomplete trace for {spec.task_id}: {sorted(names)}"
        # The closure spans three traces: trial, its shard, its plan.
        assert len(trace.trace_ids) == 3
        # Sibling trials link *into* shared shard/plan traces but are not
        # linked *from* them: the other trial stays out of this timeline.
        finished = trial_events(trace.events)
        assert {event["task_id"] for event in finished} == {spec.task_id}
        rendered = render_trace(trace)
        assert f"trace {spec.trace_id}" in rendered
        assert "trial_finished" in rendered


# ----------------------------------------------------------------------
# fleet aggregation
# ----------------------------------------------------------------------
def snapshot_payload(worker_id, written_at, queued=0, leased=0, done=0,
                     drained=False, counters=None, idle=(0, 0.0),
                     events=0, plan="nightly"):
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "written_at": written_at,
        "worker_id": worker_id,
        "plans": {plan: {"queued": queued, "leased": leased, "done": done,
                         "drained": drained}},
        "worker_idle": {"count": idle[0], "slept_s": idle[1]},
        "counters": counters or {},
        "events": events,
    }


def write_snapshot(path, **kwargs):
    path.write_text(json.dumps(snapshot_payload(**kwargs)),
                    encoding="utf-8")
    return path


def test_fleet_aggregator_merges_snapshots_and_flags_stale(tmp_path):
    """Satellite + tentpole acceptance: ≥2 snapshots merge into one
    gauges view — queue gauges freshest-observer-wins, worker counters
    summed, snapshots past max_age_s flagged stale."""
    now = 10_000.0
    fresh = write_snapshot(
        tmp_path / "w1.json", worker_id="w1", written_at=now - 10,
        queued=3, leased=1, done=2,
        counters={"lease_acquired": 2, "cache_hit": 3, "cache_miss": 1},
        idle=(4, 2.0), events=11)
    stale = write_snapshot(
        tmp_path / "w2.json", worker_id="w2", written_at=now - 120,
        queued=5, leased=0, done=0,
        counters={"lease_acquired": 1, "store_retry": 7},
        idle=(1, 0.5), events=9)

    aggregator = FleetAggregator(max_age_s=60.0, clock=lambda: now)
    first = aggregator.add_snapshot(fresh)
    second = aggregator.add_snapshot(stale)
    assert not first.stale and first.age_s == pytest.approx(10.0)
    assert second.stale and second.age_s == pytest.approx(120.0)

    gauges = aggregator.aggregate()
    assert gauges.live_workers == 1
    assert [worker.worker_id for worker in gauges.stale_workers] == ["w2"]
    # Queue gauges: w1's observation wins (younger), never a sum.
    assert gauges.plans["nightly"]["queued"] == 3
    assert gauges.plans["nightly"]["observed_by"] == "w1"
    # Worker counters: per-worker facts, summed across the fleet.
    assert gauges.counters["lease_acquired"] == 3
    assert gauges.counters["store_retry"] == 7
    assert gauges.counters["lease_lost"] == 0  # seeded, never missing
    assert gauges.idle_count == 5
    assert gauges.idle_slept_s == pytest.approx(2.5)
    assert gauges.cache_hit_ratio == pytest.approx(0.75)

    rendered = gauges.render()
    assert "w2" in rendered and "STALE" in rendered
    assert "lease churn: 3 acquired" in rendered
    assert "retries: 7 store" in rendered


def test_fleet_aggregator_drain_rate_and_broker_authority(tmp_path):
    """Drain rate needs history: timestamped queue_depth samples from an
    events tail yield shards/second; a live BrokerStatus overrides the
    snapshot-derived queue gauges entirely."""
    events = tmp_path / "events.jsonl"
    with open(events, "w", encoding="utf-8") as handle:
        for ts, done in ((100.0, 0), (110.0, 2), (120.0, 10)):
            handle.write(json.dumps({
                "event": "queue_depth", "plan": "nightly", "queued": 0,
                "leased": 0, "done": done, "ts": ts}) + "\n")
    aggregator = FleetAggregator(clock=lambda: 10_000.0)
    aggregator.add_snapshot(write_snapshot(
        tmp_path / "w1.json", worker_id="w1", written_at=9_990.0,
        queued=3, leased=1, done=2))
    assert aggregator.add_events(events) == 3
    gauges = aggregator.aggregate()
    assert gauges.drain_rate["nightly"] == pytest.approx(0.5)  # 10 in 20s

    class FakePlanStatus:
        def __init__(self):
            self.name, self.priority = "nightly", 0
            self.queued, self.leased, self.done = 9, 0, 1
            self.drained = False

    class FakeBrokerStatus:
        plans = (FakePlanStatus(),)

    aggregator.add_broker_status(FakeBrokerStatus())
    authoritative = aggregator.aggregate()
    assert authoritative.plans["nightly"]["queued"] == 9
    assert authoritative.plans["nightly"]["observed_by"] == "broker"


def test_fleet_aggregator_accepts_version1_snapshots_via_mtime(tmp_path):
    """PR 7 snapshots predate written_at; the file mtime stands in so
    staleness detection still works on mixed fleets."""
    legacy = tmp_path / "old.json"
    legacy.write_text(json.dumps({
        "plans": {"nightly": {"queued": 1, "leased": 0, "done": 0,
                              "drained": False}},
        "worker_idle": {"count": 0, "slept_s": 0.0}, "events": 1}),
        encoding="utf-8")
    mtime = legacy.stat().st_mtime
    aggregator = FleetAggregator(max_age_s=60.0,
                                 clock=lambda: mtime + 120.0)
    snapshot = aggregator.add_snapshot(legacy)
    assert snapshot.schema_version == 1
    assert snapshot.worker_id == "old"  # falls back to the file stem
    assert snapshot.stale and snapshot.age_s == pytest.approx(120.0)


def test_fleet_aggregator_validates_max_age():
    with pytest.raises(ObserveError, match="max_age_s"):
        FleetAggregator(max_age_s=-1.0)


# ----------------------------------------------------------------------
# OpenMetrics exposition: render, parse, atomic promfile
# ----------------------------------------------------------------------
def aggregated_gauges(tmp_path):
    now = 10_000.0
    aggregator = FleetAggregator(max_age_s=60.0, clock=lambda: now)
    aggregator.add_snapshot(write_snapshot(
        tmp_path / "w1.json", worker_id="w1", written_at=now - 10,
        queued=3, leased=1, done=2,
        counters={"cache_hit": 3, "cache_miss": 1}, idle=(4, 2.0)))
    aggregator.add_snapshot(write_snapshot(
        tmp_path / "w2.json", worker_id="w2", written_at=now - 120))
    return aggregator.aggregate()


def test_openmetrics_round_trips_through_the_parser(tmp_path):
    """Satellite acceptance: the promfile parses back to the exact gauge
    values — a textfile a collector would silently drop never ships."""
    gauges = aggregated_gauges(tmp_path)
    text = render_openmetrics(gauges)
    assert text.endswith("# EOF\n")
    samples = parse_openmetrics(text)
    by_key = {(sample.name, tuple(sorted(sample.labels.items()))):
              sample.value for sample in samples}
    assert by_key[("repro_queue_depth",
                   (("plan", "nightly"), ("state", "queued")))] == 3
    assert by_key[("repro_workers", (("state", "live"),))] == 1
    assert by_key[("repro_workers", (("state", "stale"),))] == 1
    assert by_key[("repro_events_total", (("kind", "cache_hit"),))] == 3
    assert by_key[("repro_cache_hit_ratio", ())] == pytest.approx(0.75)
    assert by_key[("repro_idle_seconds_total", ())] == pytest.approx(2.0)

    promfile = write_promfile(gauges, tmp_path / "prom")
    assert promfile.name == "repro_fleet.prom"
    assert parse_openmetrics(promfile.read_text(encoding="utf-8"))
    # Atomic: the rename left no temp files next to the target.
    assert [entry.name for entry in promfile.parent.iterdir()] \
        == ["repro_fleet.prom"]


def test_openmetrics_parser_rejects_malformed_expositions():
    with pytest.raises(ObserveError, match="missing # EOF"):
        parse_openmetrics("repro_workers 1\n")
    with pytest.raises(ObserveError, match="line 1"):
        parse_openmetrics("!!garbage!!\n# EOF\n")
    with pytest.raises(ObserveError, match="after # EOF"):
        parse_openmetrics("# EOF\nrepro_workers 1\n")
    with pytest.raises(ObserveError, match="non-numeric"):
        parse_openmetrics("repro_workers one\n# EOF\n")
    with pytest.raises(ObserveError, match="label block"):
        parse_openmetrics('repro_workers{state=live} 1\n# EOF\n')
    # Label values round-trip through escaping.
    samples = parse_openmetrics(
        'repro_queue_depth{plan="a\\"b\\\\c"} 1\n# EOF\n')
    assert samples[0].labels == {"plan": 'a"b\\c'}


# ----------------------------------------------------------------------
# the autoscaling advisor
# ----------------------------------------------------------------------
def live_worker(worker_id="w1"):
    return WorkerSnapshot(path=f"{worker_id}.json", worker_id=worker_id,
                          schema_version=2, written_at=0.0, age_s=1.0,
                          stale=False)


def gauges_with(queued=0, leased=0, workers=0, drain_rate=None):
    gauges = FleetGauges()
    gauges.plans = {"nightly": {"queued": queued, "leased": leased,
                                "done": 0, "drained": False}}
    gauges.workers = [live_worker(f"w{index}") for index in range(workers)]
    gauges.drain_rate = dict(drain_rate or {})
    return gauges


def test_advisor_scales_up_from_zero_and_from_backlog():
    policy = AdvisorPolicy(target_backlog=4)
    dead_fleet = policy.advise(gauges_with(queued=8, workers=0))
    assert dead_fleet.action == "scale_up"
    assert dead_fleet.recommended == 2  # ceil(8 / 4)
    assert "no live worker" in dead_fleet.reason

    backlog = policy.advise(gauges_with(queued=20, workers=1))
    assert backlog.action == "scale_up"
    assert backlog.workers == 1 and backlog.recommended == 5

    clamped = AdvisorPolicy(target_backlog=4, max_workers=3).advise(
        gauges_with(queued=20, workers=1))
    assert clamped.recommended == 3


def test_advisor_holds_within_target_and_scales_down_when_drained():
    policy = AdvisorPolicy(target_backlog=4, min_workers=1)
    hold = policy.advise(gauges_with(queued=3, leased=1, workers=1))
    assert hold.action == "hold" and hold.recommended == 1

    down = policy.advise(gauges_with(queued=0, leased=0, workers=3))
    assert down.action == "scale_down"
    assert down.workers == 3 and down.recommended == 1
    assert "drained" in down.reason

    # At the floor there is nothing to shed: hold.
    floor = policy.advise(gauges_with(queued=0, leased=0, workers=1))
    assert floor.action == "hold"

    # A live drain rate turns the backlog into an ETA in the reason.
    eta = policy.advise(gauges_with(queued=30, workers=1,
                                    drain_rate={"nightly": 0.5}))
    assert eta.action == "scale_up" and "drain eta 60s" in eta.reason


def test_advisor_policy_validates_construction():
    with pytest.raises(ObserveError, match="target_backlog"):
        AdvisorPolicy(target_backlog=0)
    with pytest.raises(ObserveError, match="min_workers"):
        AdvisorPolicy(min_workers=-1)
    with pytest.raises(ObserveError, match="max_workers"):
        AdvisorPolicy(min_workers=4, max_workers=2)


# ----------------------------------------------------------------------
# CLI: fleet status --strict / --prom-dir, fleet advise, trace
# ----------------------------------------------------------------------
def seeded_queue(tmp_path, shards=2, drain=False):
    broker = LocalDirBroker(tmp_path / "queue")
    broker.submit(grid_plan(shards=shards))
    if drain:
        ShardWorker(broker, ManifestExecutor(), worker_id="seed-w",
                    poll=0, heartbeat=0).run()
    return str(tmp_path / "queue")


def test_fleet_status_cli_merges_snapshots_and_strict_gates(tmp_path,
                                                            capsys):
    """Satellite acceptance: status merges ≥2 snapshots, warns about the
    stale one on stderr, and --strict turns the warning into exit 2."""
    queue = seeded_queue(tmp_path)
    now = time.time()
    fresh = write_snapshot(tmp_path / "w1.json", worker_id="w1",
                           written_at=now)
    stale = write_snapshot(tmp_path / "w2.json", worker_id="w2",
                           written_at=now - 4000)
    base = ["fleet", "status", "--broker", queue,
            "--metrics", str(fresh), "--metrics", str(stale),
            "--max-age-s", "60"]
    assert main(base) == 0
    captured = capsys.readouterr()
    assert "STALE" in captured.out
    assert "w2" in captured.err and "may be dead" in captured.err
    assert "--max-age-s 60" in captured.err

    assert main(base + ["--strict"]) == 2
    capsys.readouterr()

    prom_dir = tmp_path / "prom"
    assert main(base + ["--prom-dir", str(prom_dir), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["fleet"]["live_workers"] == 1
    assert len(payload["fleet"]["workers"]) == 2
    assert [worker["stale"] for worker in payload["fleet"]["workers"]] \
        == [False, True]
    samples = parse_openmetrics(
        (prom_dir / "repro_fleet.prom").read_text(encoding="utf-8"))
    assert any(sample.name == "repro_queue_depth" for sample in samples)


def test_fleet_advise_cli_recommends_and_emits(tmp_path, capsys):
    queue = seeded_queue(tmp_path, shards=2)
    advice_log = tmp_path / "advice.jsonl"
    assert main(["fleet", "advise", "--broker", queue, "--json",
                 "--emit", str(advice_log)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["action"] == "scale_up"
    assert payload["queued"] == 2 and payload["workers"] == 0
    emitted = read_jsonl_events(advice_log)
    assert [event["event"] for event in emitted] == ["scale_advice"]
    assert emitted[0]["action"] == "scale_up"

    with pytest.raises(SystemExit, match="max_workers"):
        main(["fleet", "advise", "--broker", queue,
              "--min-workers", "5", "--max-workers", "2"])


def test_trace_cli_id_show_and_export(tmp_path, capsys):
    spec = grid_specs()[0]
    assert main(["trace", "id", "--task", spec.task_id,
                 "--setting", spec.setting_key]) == 0
    assert capsys.readouterr().out.strip() == spec.trace_id

    log = tmp_path / "serial.jsonl"
    run_serial(log)
    assert main(["trace", "show", spec.trace_id,
                 "--events", str(log)]) == 0
    shown = capsys.readouterr().out
    assert f"trace {spec.trace_id}" in shown
    assert "trial_started" in shown and "trial_finished" in shown

    out = tmp_path / "trace.json"
    assert main(["trace", "export", spec.trace_id, "--events", str(log),
                 "--out", str(out)]) == 0
    capsys.readouterr()
    exported = json.loads(out.read_text(encoding="utf-8"))
    assert exported["trace_id"] == spec.trace_id
    assert {event["event"] for event in exported["events"]} \
        == {"trial_started", "trial_finished"}

    # An id nothing emitted: rendered as empty, exit code 1.
    assert main(["trace", "show", "f" * 16, "--events", str(log)]) == 1
    assert "no events found" in capsys.readouterr().out
