"""The equivalence harness as a tier-1 test (the acceptance-criteria gate).

Every execution path the codebase offers — serial, process-pool parallel,
file-based shard plan/run/merge, the directory-broker work queue, and the
object-store broker — must export byte-identical JSON for the same
(seed, grid).  ``tests/equivalence.py`` does the running; these tests
parametrize it over seeds and shard counts.
"""

import json

import pytest

from equivalence import (
    DEFAULT_SETTINGS,
    DEFAULT_TASKS,
    SYNTHETIC_SPEC,
    assert_paths_bit_identical,
    outcomes_bytes,
    prime_cache_with_incremental_models,
    run_all_paths,
    run_chaos_store_broker,
    run_multi_plan_broker,
    run_serial,
    synthetic_task_ids,
)
from repro.bench.runner import DEFAULT_SEED
from repro.bench.telemetry import AggregatingSink, use_sink


@pytest.mark.parametrize("shard_count", [2, 3])
@pytest.mark.parametrize("seed", [DEFAULT_SEED, 1097])
def test_every_execution_path_is_bit_identical(tmp_path, seed, shard_count):
    reference = assert_paths_bit_identical(
        seed=seed, trials=1, setting_keys=DEFAULT_SETTINGS,
        task_ids=DEFAULT_TASKS, shard_count=shard_count, work_dir=tmp_path)
    # The reference is a real export: per-setting results for the full grid.
    payload = json.loads(reference.decode("utf-8"))
    assert set(payload) == set(DEFAULT_SETTINGS)
    for key in DEFAULT_SETTINGS:
        assert len(payload[key]["results"]) == len(DEFAULT_TASKS)


def test_incremental_models_keep_every_path_bit_identical(tmp_path):
    """PR 6 satellite: warm the parallel path's cache with models produced
    by the incremental (replay + splice) ripper, then run all five paths.
    Serial runs with no cache — its scratch-ripped models are the
    reference — so byte-identical exports prove incremental models are
    indistinguishable across every execution path."""
    primed = prime_cache_with_incremental_models(
        tmp_path / "parallel" / "parallel-cache", task_ids=DEFAULT_TASKS)
    assert sorted(primed) == ["powerpoint", "word"]
    # Word transfers through the replay pipeline; PowerPoint's context
    # setup perturbs its own state, so the ripper detects the divergence
    # and falls back to a scratch rip for it.
    assert primed["word"] == "incremental"
    assert primed["powerpoint"] == "full"
    assert_paths_bit_identical(
        seed=DEFAULT_SEED, trials=1, setting_keys=DEFAULT_SETTINGS,
        task_ids=DEFAULT_TASKS, shard_count=2, work_dir=tmp_path)
    # The primed entries were actually served, not rebuilt: both files
    # still carry the version-aware key the prime step stored them under.
    cache_files = [p.name for p in
                   (tmp_path / "parallel" / "parallel-cache").glob("*.json")
                   if not p.name.startswith(".")]
    assert len(cache_files) == 2


def test_two_plans_sharing_a_broker_stay_bit_identical_to_serial(tmp_path):
    """PR 7 tentpole: two named plans (different seeds) on one broker,
    drained by one worker through one shared cache, each collect
    bit-identical to running that seed's grid serially and alone."""
    seeds = (DEFAULT_SEED, 1097)
    multi = run_multi_plan_broker(
        seeds=seeds, trials=1, setting_keys=DEFAULT_SETTINGS,
        task_ids=DEFAULT_TASKS, shard_count=2, work_dir=tmp_path)
    for seed in seeds:
        reference = run_serial(seed, 1, DEFAULT_SETTINGS, DEFAULT_TASKS)
        assert multi[f"seed-{seed}"] == reference, (
            f"plan 'seed-{seed}' diverged from the serial run of the same "
            f"seed while sharing a broker with another plan")
    assert multi[f"seed-{seeds[0]}"] != multi[f"seed-{seeds[1]}"]


def test_chaos_store_broker_stays_bit_identical_to_serial(tmp_path):
    """PR 8 tentpole: a seeded hostile fault schedule rains transient
    errors on every object-store call while two workers drain the queue;
    bounded retry absorbs all of it (visible as ``store_retry`` telemetry)
    and the merged export is still byte-for-byte the serial export."""
    reference = run_serial(DEFAULT_SEED, 1, DEFAULT_SETTINGS, DEFAULT_TASKS)
    with use_sink(AggregatingSink()) as sink:
        chaotic = run_chaos_store_broker(
            seed=DEFAULT_SEED, trials=1, setting_keys=DEFAULT_SETTINGS,
            task_ids=DEFAULT_TASKS, shard_count=2, work_dir=tmp_path)
    assert chaotic == reference, (
        "the store-broker path diverged from serial under injected faults")
    # The weather actually reached the retry layer — this run earned its
    # name — and nobody exhausted a budget (the run completed).
    assert sink.count("store_retry") > 0
    """Guard against the harness comparing vacuously identical blobs."""
    exports = {
        seed: run_all_paths(seed=seed, trials=1,
                            setting_keys=DEFAULT_SETTINGS,
                            task_ids=DEFAULT_TASKS, shard_count=2,
                            work_dir=tmp_path / f"seed-{seed}")
        for seed in (DEFAULT_SEED, 1097)
    }
    assert exports[DEFAULT_SEED]["serial"] != exports[1097]["serial"]
    # Guard against an execution path silently dropping out of the harness:
    # both broker families (atomic-rename dir and CAS object store) run.
    assert set(exports[DEFAULT_SEED]) == {"serial", "parallel",
                                          "file-shards", "broker",
                                          "store-broker"}


def test_generated_grid_is_bit_identical_across_all_paths(tmp_path):
    """PR 9 tentpole: a grid mixing a generated app's task suite with a
    hand-written task runs byte-identically through all five execution
    paths.  Workers in the shard/broker paths hold only the ``syn:`` ids —
    the token regenerates the app and tasks in each fresh process."""
    task_ids = synthetic_task_ids(SYNTHETIC_SPEC) + ("word-02-landscape",)
    reference = assert_paths_bit_identical(
        seed=DEFAULT_SEED, trials=1, setting_keys=DEFAULT_SETTINGS,
        task_ids=task_ids, shard_count=2, work_dir=tmp_path)
    payload = json.loads(reference.decode("utf-8"))
    for key in DEFAULT_SETTINGS:
        assert len(payload[key]["results"]) == len(task_ids)


def test_generated_grid_survives_chaos_store_broker(tmp_path):
    """The PR 8 chaos guarantee extends to generated grids: a hostile
    fault schedule on the object store leaves the synthetic suite's
    merged export byte-identical to its serial run."""
    task_ids = synthetic_task_ids(SYNTHETIC_SPEC)
    reference = run_serial(DEFAULT_SEED, 1, DEFAULT_SETTINGS, task_ids)
    chaotic = run_chaos_store_broker(
        seed=DEFAULT_SEED, trials=1, setting_keys=DEFAULT_SETTINGS,
        task_ids=task_ids, shard_count=2, work_dir=tmp_path)
    assert chaotic == reference, (
        "the generated grid diverged from serial under injected faults")


def test_outcomes_bytes_is_deterministic_for_equal_outcomes():
    from repro.bench.runner import BenchmarkConfig, BenchmarkRunner, setting_by_key
    from repro.bench.tasks import task_by_id

    def one_run():
        runner = BenchmarkRunner(BenchmarkConfig(
            trials=1, tasks=[task_by_id(DEFAULT_TASKS[0])]))
        return outcomes_bytes(runner.run_settings(
            [setting_by_key(DEFAULT_SETTINGS[1])]))

    assert one_run() == one_run()
