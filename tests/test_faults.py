"""The fault-injection layer and the retry paths it exists to drive.

Three layers under test, bottom-up:

* the adversary itself — :class:`~repro.bench.faults.FaultSchedule` must be
  deterministic (same seed → same weather), replayable (:meth:`reset`),
  and round-trip through its JSON file format with labeled errors on every
  malformed input, or a CI chaos run could not be reproduced from its
  artifact;
* the wrappers — :class:`~repro.bench.faults.FaultyObjectStore` /
  :class:`~repro.bench.faults.FaultyBroker` inject strictly *before* the
  inner call (a fault never half-applies an operation) and lie only in the
  ways real storage lies: retryable errors, lost CAS races, truncated
  listings, latency;
* the armour — :func:`~repro.bench.store.call_with_retries` absorbs
  transients up to a :class:`~repro.bench.store.RetryPolicy` budget
  (emitting ``store_retry`` telemetry per absorbed attempt), then gives up
  with a :class:`~repro.bench.store.RetryBudgetExceeded` naming the op,
  key, and attempt count; every :class:`ObjectStoreBroker` verb and the
  :class:`ShardWorker` loop surface that labeled give-up, and a worker
  whose lease is storm-reclaimed mid-manifest abandons cleanly (no orphan
  result, ``abandoned`` increments).

The wall-clock satellite rides here too: in-process deadlines are
monotonic, persisted lease deadlines stay wall-clock with an explicit
``skew_allowance`` grace.
"""

import threading
import time

import pytest

from broker_contract import (
    FakeClock,
    chaos_retry_policy,
    hostile_schedule,
    run_manifest,
    small_plan,
)
from repro.bench.faults import (
    BROKER_OPS,
    STORE_OPS,
    FaultSchedule,
    FaultSpec,
    FaultyBroker,
    FaultyObjectStore,
    RetryingBroker,
)
from repro.bench.shard import ManifestExecutor, ShardError, merge_shard_results
from repro.bench.store import (
    InMemoryObjectStore,
    RetryBudgetExceeded,
    RetryPolicy,
    TransientStoreError,
    call_with_retries,
)
from repro.bench.telemetry import AggregatingSink
from repro.bench.transport import (
    InMemoryBroker,
    LocalDirBroker,
    ObjectStoreBroker,
    ShardWorker,
)


def no_sleep(_delay: float) -> None:
    pass


def always_fail(*ops: str) -> FaultSchedule:
    return FaultSchedule(seed=1, ops={
        op: FaultSpec(error_rate=1.0) for op in ops})


# ----------------------------------------------------------------------
# FaultSchedule: deterministic, replayable, serializable
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_same_seed_same_weather(self):
        spec = FaultSpec(error_rate=0.3, error_burst=2, latency_s=0.1,
                         cas_lost_rate=0.2, truncate_rate=0.2)

        def trace(schedule):
            return [(d.error, d.cas_lost, d.truncate, round(d.delay_s, 9))
                    for d in (schedule.decide("get") for _ in range(200))]

        first = trace(FaultSchedule(seed=42, ops={"get": spec}))
        second = trace(FaultSchedule(seed=42, ops={"get": spec}))
        assert first == second
        assert trace(FaultSchedule(seed=43, ops={"get": spec})) != first

    def test_reset_replays_the_identical_storm(self):
        schedule = hostile_schedule()
        first = [schedule.decide("lease").error for _ in range(100)]
        schedule.reset()
        assert [schedule.decide("lease").error for _ in range(100)] == first

    def test_op_streams_are_independent_of_interleaving(self):
        """Each op's decisions depend only on (seed, op), not on how calls
        to *other* ops interleave — the property that keeps chaos runs
        reproducible across thread schedules."""
        spec = FaultSpec(error_rate=0.5)
        alone = FaultSchedule(seed=7, ops={"get": spec, "delete": spec})
        solo = [alone.decide("get").error for _ in range(50)]
        mixed = FaultSchedule(seed=7, ops={"get": spec, "delete": spec})
        interleaved = []
        for _ in range(50):
            mixed.decide("delete")  # noise on a different stream
            interleaved.append(mixed.decide("get").error)
        assert interleaved == solo

    def test_bursts_fail_consecutively(self):
        schedule = FaultSchedule(seed=3, ops={
            "get": FaultSpec(error_rate=0.2, error_burst=3)})
        flags = [schedule.decide("get").error for _ in range(300)]
        runs, streak = [], 0
        for flag in flags:
            if flag:
                streak += 1
            elif streak:
                runs.append(streak)
                streak = 0
        assert runs and all(length % 3 == 0 for length in runs)

    def test_json_round_trip(self, tmp_path):
        schedule = hostile_schedule(seed=99)
        path = schedule.save(tmp_path / "storm.json")
        loaded = FaultSchedule.load(path)
        assert loaded.as_dict() == schedule.as_dict()
        assert [loaded.decide("get").error for _ in range(50)] \
            == [schedule.decide("get").error for _ in range(50)]

    @pytest.mark.parametrize("payload, match", [
        ({"kind": "nope"}, "field 'kind'"),
        ({"kind": "repro-fault-schedule", "format_version": 9},
         "format_version"),
        ({"kind": "repro-fault-schedule", "format_version": 1,
          "ops": {"teleport": {}}}, "unknown op 'teleport'"),
        ({"kind": "repro-fault-schedule", "format_version": 1,
          "ops": {"get": {"error_rate": 2.0}}}, "probability"),
        ({"kind": "repro-fault-schedule", "format_version": 1,
          "ops": {"get": {"error_burst": 0}}}, "error_burst"),
        ({"kind": "repro-fault-schedule", "format_version": 1,
          "ops": {"get": {"typo_rate": 0.5}}}, "unknown field"),
        ({"kind": "repro-fault-schedule", "format_version": 1,
          "seed": "abc"}, "seed"),
    ])
    def test_malformed_payloads_are_labeled(self, payload, match):
        with pytest.raises(ShardError, match=match):
            FaultSchedule.from_dict(payload)

    def test_unreadable_files_are_labeled(self, tmp_path):
        with pytest.raises(ShardError, match="cannot read"):
            FaultSchedule.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ShardError, match="not valid JSON"):
            FaultSchedule.load(bad)


# ----------------------------------------------------------------------
# FaultyObjectStore: lies like real storage, never corrupts
# ----------------------------------------------------------------------
class TestFaultyObjectStore:
    def test_injected_error_leaves_the_store_untouched(self):
        inner = InMemoryObjectStore()
        store = FaultyObjectStore(inner, always_fail("put_if_absent"),
                                  sleep=no_sleep)
        with pytest.raises(TransientStoreError, match="put_if_absent"):
            store.put_if_absent("k", b"v")
        assert inner.get("k") is None  # the fault fired before the write
        assert store.injected.snapshot()["errors"] == 1

    def test_cas_lost_skips_the_swap_and_emits_cas_retry(self):
        inner = InMemoryObjectStore()
        inner.put_if_absent("k", b"old")
        _, etag = inner.get("k")
        sink = AggregatingSink()
        store = FaultyObjectStore(
            inner, FaultSchedule(seed=1, ops={
                "put_if_match": FaultSpec(cas_lost_rate=1.0)}),
            sleep=no_sleep, sink=sink)
        assert store.put_if_match("k", b"new", etag) is False
        assert inner.get("k")[0] == b"old"  # the swap never happened
        assert sink.snapshot()["counters"]["cas_retry"] == 1
        assert store.injected.snapshot()["cas_lost"] == 1

    def test_truncation_returns_a_prefix_of_the_truth(self):
        inner = InMemoryObjectStore()
        for index in range(20):
            inner.put_if_absent(f"p/{index:02d}", b"x")
        store = FaultyObjectStore(
            inner, FaultSchedule(seed=5, ops={
                "list_prefix": FaultSpec(truncate_rate=1.0)}),
            sleep=no_sleep)
        full = inner.list_prefix("p/")
        shortened = [store.list_prefix("p/") for _ in range(10)]
        assert any(len(page) < len(full) for page in shortened)
        for page in shortened:
            assert page == full[:len(page)]  # partial truth, never invention

    def test_latency_injection_sleeps(self):
        slept = []
        store = FaultyObjectStore(
            InMemoryObjectStore(),
            FaultSchedule(seed=2, ops={"get": FaultSpec(latency_s=0.25)}),
            sleep=slept.append)
        store.get("k")
        assert len(slept) == 1 and 0.0 < slept[0] <= 0.25
        assert store.injected.snapshot()["delays"] == 1

    def test_disabled_wrapper_is_transparent(self):
        store = FaultyObjectStore(InMemoryObjectStore(),
                                  always_fail(*STORE_OPS), sleep=no_sleep)
        store.enabled = False
        assert store.put_if_absent("k", b"v") is True
        assert store.get("k")[0] == b"v"
        assert store.list_prefix("") == ["k"]
        assert store.delete("k") is True
        assert store.injected.snapshot()["errors"] == 0
        assert store.describe().startswith("faulty(")


# ----------------------------------------------------------------------
# call_with_retries / RetryPolicy: the armour
# ----------------------------------------------------------------------
class TestCallWithRetries:
    def test_absorbs_transients_and_counts_each_attempt(self):
        sink = AggregatingSink()
        calls = []

        def flaky():
            calls.append(None)
            if len(calls) < 3:
                raise TransientStoreError("blip")
            return "ok"

        policy = RetryPolicy(attempts=5, sleep=no_sleep)
        assert call_with_retries(flaky, op="get", key="k",
                                 policy=policy, sink=sink) == "ok"
        assert len(calls) == 3
        assert sink.snapshot()["counters"]["store_retry"] == 2

    def test_give_up_is_labeled_with_op_key_and_attempts(self):
        def doomed():
            raise TransientStoreError("still down")

        with pytest.raises(RetryBudgetExceeded,
                           match=r"get on 'k' still failing after 4 "
                                 r"attempt\(s\)") as caught:
            call_with_retries(doomed, op="get", key="k",
                              policy=RetryPolicy(attempts=4, sleep=no_sleep))
        assert isinstance(caught.value.__cause__, TransientStoreError)

    def test_semantic_errors_are_never_retried(self):
        calls = []

        def wrong():
            calls.append(None)
            raise ShardError("malformed payload")

        with pytest.raises(ShardError, match="malformed payload"):
            call_with_retries(wrong, op="get", key="k",
                              policy=RetryPolicy(attempts=8, sleep=no_sleep))
        assert len(calls) == 1

    def test_backoff_doubles_with_jitter_up_to_the_cap(self):
        policy = RetryPolicy(attempts=10, backoff_base_s=0.1,
                             backoff_cap_s=0.4, sleep=no_sleep)
        for attempt in range(1, 10):
            nominal = min(0.4, 0.1 * 2.0 ** (attempt - 1))
            delay = policy.backoff_s(attempt)
            assert 0.5 * nominal <= delay <= nominal

    @pytest.mark.parametrize("kwargs, match", [
        ({"attempts": 0}, "attempts"),
        ({"attempts": True}, "attempts"),
        ({"backoff_base_s": -1}, "backoff"),
        ({"backoff_cap_s": float("nan")}, "backoff"),
    ])
    def test_policy_rejects_bad_budgets(self, kwargs, match):
        with pytest.raises(ShardError, match=match):
            RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# give-up paths: every ObjectStoreBroker verb, plus the worker loop
# ----------------------------------------------------------------------
class TestGiveUpPaths:
    @pytest.fixture
    def armed(self):
        """A store broker whose storage will fail every call (3-attempt
        budget), but with ``enabled=False`` so tests can stage real state
        first and flip the storm on at the interesting moment."""
        store = FaultyObjectStore(InMemoryObjectStore(),
                                  always_fail(*STORE_OPS), sleep=no_sleep)
        store.enabled = False
        sink = AggregatingSink()
        broker = ObjectStoreBroker(
            store, retry=RetryPolicy(attempts=3, sleep=no_sleep), sink=sink)
        return store, broker, sink

    def expect_give_up(self, store, sink, match, fn):
        store.enabled = True
        with pytest.raises(RetryBudgetExceeded, match=match):
            fn()
        store.enabled = False
        assert sink.snapshot()["counters"]["store_retry"] >= 3

    def test_submit(self, armed):
        store, broker, sink = armed
        self.expect_give_up(
            store, sink, r"put_if_absent on 'plans/default'.*3 attempt",
            lambda: broker.submit(small_plan(shards=1)))

    def test_lease(self, armed):
        store, broker, sink = armed
        broker.submit(small_plan(shards=1))
        self.expect_give_up(store, sink, r"list_prefix on 'plans/'",
                            lambda: broker.lease("worker-a"))

    def test_renew(self, armed):
        store, broker, sink = armed
        broker.submit(small_plan(shards=1))
        lease = broker.lease("worker-a")
        self.expect_give_up(store, sink, r"get on 'lease/default/",
                            lambda: broker.renew(lease))

    def test_post(self, armed):
        store, broker, sink = armed
        broker.submit(small_plan(shards=1))
        lease = broker.lease("worker-a")
        results = run_manifest(lease.manifest)
        self.expect_give_up(store, sink, r"get on 'plans/default'",
                            lambda: broker.post(lease, results))
        # The storm passed without the result landing; the retry was safe.
        assert broker.post(lease, results) is True

    def test_collect(self, armed):
        store, broker, sink = armed
        broker.submit(small_plan(shards=1))
        self.expect_give_up(store, sink, r"get on 'plans/default'",
                            broker.collect)

    def test_status(self, armed):
        store, broker, sink = armed
        broker.submit(small_plan(shards=1))
        self.expect_give_up(store, sink, r"list_prefix on 'plans/'",
                            broker.status)

    def test_worker_surfaces_a_labeled_lease_give_up(self, tmp_path):
        faulty = FaultyBroker(LocalDirBroker(tmp_path / "broker"),
                              always_fail("lease"), sleep=no_sleep)
        worker = ShardWorker(faulty, worker_id="doomed", poll=0,
                             retry=RetryPolicy(attempts=2, sleep=no_sleep))
        with pytest.raises(RetryBudgetExceeded,
                           match=r"lease on 'doomed'.*2 attempt"):
            worker.run()

    def test_retrying_broker_surfaces_labeled_give_ups_too(self, tmp_path):
        broker = RetryingBroker(
            FaultyBroker(LocalDirBroker(tmp_path / "broker"),
                         always_fail(*BROKER_OPS), sleep=no_sleep),
            policy=RetryPolicy(attempts=2, sleep=no_sleep))
        with pytest.raises(RetryBudgetExceeded, match=r"submit on 'default'"):
            broker.submit(small_plan(shards=1))
        with pytest.raises(RetryBudgetExceeded, match=r"status"):
            broker.status()


class _SlowExecutor(ManifestExecutor):
    """Holds each manifest long enough for heartbeats to fire."""

    def __init__(self, hold_s: float) -> None:
        super().__init__()
        self.hold_s = hold_s

    def run(self, manifest, progress=None):
        time.sleep(self.hold_s)
        return run_manifest(manifest)


class TestWorkerUnderStorm:
    def test_lease_lost_mid_storm_abandons_cleanly(self, tmp_path):
        """A renew storm (every heartbeat reports the race lost) must make
        the worker abandon: ``abandoned`` increments, nothing is posted, no
        orphan result exists — and once the storm passes, the expired lease
        is reclaimed and the plan still drains to a clean merge."""
        inner = LocalDirBroker(tmp_path / "broker", lease_ttl=0.5)
        faulty = FaultyBroker(inner, FaultSchedule(seed=4, ops={
            "renew": FaultSpec(cas_lost_rate=1.0)}), sleep=no_sleep)
        faulty.submit(small_plan(shards=1))
        worker = ShardWorker(faulty, executor=_SlowExecutor(0.4),
                             worker_id="stormed", poll=0, max_manifests=1,
                             heartbeat=0.1, retry=chaos_retry_policy())
        posted = worker.run()
        assert worker.abandoned == 1
        assert posted == [] and worker.results_by_plan == {}
        assert inner.status().done == 0  # no orphan result landed
        # Storm over: the abandoned lease expires and a healthy worker
        # reclaims and finishes the plan.
        faulty.enabled = False
        deadline = time.monotonic() + 10.0
        reclaimed = inner.lease("rescuer")
        while reclaimed is None and time.monotonic() < deadline:
            time.sleep(0.05)
            reclaimed = inner.lease("rescuer")
        assert reclaimed is not None, "abandoned lease never expired"
        inner.post(reclaimed, run_manifest(reclaimed.manifest))
        assert inner.status().complete
        assert list(merge_shard_results(inner.collect()))

    def test_storm_then_recovery_drains_to_a_clean_merge(self, tmp_path):
        inner = LocalDirBroker(tmp_path / "broker", lease_ttl=0.3)
        faulty = FaultyBroker(inner, FaultSchedule(seed=4, ops={
            "renew": FaultSpec(cas_lost_rate=1.0)}), sleep=no_sleep)
        faulty.submit(small_plan(shards=1))
        stormed = ShardWorker(faulty, executor=_SlowExecutor(0.35),
                              worker_id="stormed", poll=0, max_manifests=1,
                              heartbeat=0.1, retry=chaos_retry_policy())
        stormed.run()
        assert stormed.abandoned == 1
        faulty.enabled = False
        time.sleep(0.35)  # let the abandoned lease expire for reclaim
        rescuer = ShardWorker(inner, worker_id="rescuer", poll=0.05)
        rescued = rescuer.run()
        assert len(rescued) == 1 and rescuer.abandoned == 0
        assert list(merge_shard_results(inner.collect()))

    def test_worker_retry_absorbs_a_hostile_broker(self):
        """A full hostile schedule on every queue verb: the worker's own
        bounded retries keep the loop alive and the plan drains."""
        inner = InMemoryBroker()
        faulty = FaultyBroker(inner, hostile_schedule(), sleep=no_sleep)
        inner.submit(small_plan(shards=2))  # the storm is for the worker
        worker = ShardWorker(faulty, worker_id="tough", poll=0, heartbeat=0,
                             retry=chaos_retry_policy())
        posted = worker.run()
        assert len(posted) == 2 and worker.abandoned == 0
        assert faulty.injected.snapshot()["errors"] > 0  # weather happened
        assert list(merge_shard_results(inner.collect()))


# ----------------------------------------------------------------------
# clocks: monotonic in-process, wall-clock + skew allowance persisted
# ----------------------------------------------------------------------
class TestClockDiscipline:
    def test_in_process_deadlines_default_to_monotonic(self):
        assert InMemoryBroker()._clock is time.monotonic
        assert ShardWorker(InMemoryBroker())._clock is time.monotonic

    def test_persisted_deadlines_stay_wall_clock(self, tmp_path):
        # Cross-process deadlines must be comparable between machines, so
        # these two intentionally stay on time.time — with skew_allowance
        # as the documented grace (below), not a clock change.
        assert LocalDirBroker(tmp_path / "b")._clock is time.time
        assert ObjectStoreBroker(InMemoryObjectStore())._clock is time.time

    @pytest.mark.parametrize("make", [
        lambda tmp_path, **kwargs: LocalDirBroker(tmp_path / "broker",
                                                  **kwargs),
        lambda tmp_path, **kwargs: ObjectStoreBroker(InMemoryObjectStore(),
                                                     **kwargs),
    ])
    def test_skew_allowance_grants_extra_life_to_leases(self, make, tmp_path):
        clock = FakeClock()
        broker = make(tmp_path, lease_ttl=60.0, skew_allowance=5.0,
                      clock=clock)
        broker.submit(small_plan(shards=1))
        held = broker.lease("worker-a")
        assert held is not None
        clock.advance(61.0)  # past the ttl, inside the skew grace
        assert broker.lease("worker-b") is None
        assert broker.status().leased == 1  # status honours the grace too
        clock.advance(4.5)  # now past ttl + allowance
        reclaimed = broker.lease("worker-b")
        assert reclaimed is not None and reclaimed.worker_id == "worker-b"

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_skew_allowance_must_be_finite_nonnegative(self, bad, tmp_path):
        with pytest.raises(ShardError, match="skew_allowance"):
            LocalDirBroker(tmp_path / "broker", skew_allowance=bad)
        with pytest.raises(ShardError, match="skew_allowance"):
            ObjectStoreBroker(InMemoryObjectStore(), skew_allowance=bad)
