"""Tests for the execution engine: scheduling, executors, artifact cache."""

import json

import pytest

from repro.agent.session import InterfaceSetting, LLMCallRecord, SessionResult
from repro.bench.engine import (
    ParallelExecutor,
    SerialExecutor,
    TrialSpec,
    expand_trial_specs,
    trial_seed,
)
from repro.bench.metrics import aggregate
from repro.bench.runner import (
    BenchmarkConfig,
    BenchmarkRunner,
    DEFAULT_SEED,
    setting_by_key,
)
from repro.bench.tasks import task_by_id
from repro.dmi.cache import ArtifactCache, config_fingerprint
from repro.dmi.interface import DMIConfig
from repro.ripping.ripper import GuiRipper, RipperConfig
from repro.spec import FailureCause
from repro.topology.serialize import serialize_forest

SUBSET = ("ppt-01-blue-background", "word-02-landscape", "excel-03-bold-header")
SETTING_KEYS = ("gui-gpt5-medium", "dmi-gpt5-medium")


def subset_tasks():
    return [task_by_id(task_id) for task_id in SUBSET]


def subset_settings():
    return [setting_by_key(key) for key in SETTING_KEYS]


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
def test_trial_specs_enumerate_grid_in_canonical_order():
    runner = BenchmarkRunner(BenchmarkConfig(trials=2, seed=3, tasks=subset_tasks()))
    specs = runner.trial_specs(subset_settings())
    assert len(specs) == 2 * 3 * 2
    # Nesting order: settings, then tasks, then trials.
    assert specs[0] == TrialSpec("ppt-01-blue-background", "gui-gpt5-medium", 0,
                                 trial_seed(3, "ppt-01-blue-background",
                                            "gui-gpt5-medium", 0))
    assert specs[1].trial == 1
    assert specs[-1].setting_key == "dmi-gpt5-medium"


def test_trial_seed_is_order_and_process_independent():
    assert trial_seed(3, "t", "s", 0) == trial_seed(3, "t", "s", 0)
    assert trial_seed(3, "t", "s", 0) != trial_seed(3, "t", "s", 1)
    assert trial_seed(3, "t", "s", 0) != trial_seed(4, "t", "s", 0)


def test_trial_spec_round_trips_through_dict():
    spec = TrialSpec("t", "s", 2, 12345)
    assert TrialSpec.from_dict(spec.as_dict()) == spec


def test_expand_trial_specs_matches_runner_scheduling():
    specs = expand_trial_specs(DEFAULT_SEED, 3, ["a"], ["t1", "t2"])
    assert [s.task_id for s in specs] == ["t1", "t1", "t1", "t2", "t2", "t2"]


# ----------------------------------------------------------------------
# serial vs parallel equivalence
# ----------------------------------------------------------------------
def test_parallel_executor_matches_serial_bit_for_bit(tmp_path):
    config = dict(trials=2, seed=DEFAULT_SEED, tasks=subset_tasks())
    serial = BenchmarkRunner(BenchmarkConfig(**config))
    parallel = BenchmarkRunner(BenchmarkConfig(**config, jobs=2,
                                               cache_dir=tmp_path / "cache"))
    assert isinstance(serial.executor(), SerialExecutor)
    assert isinstance(parallel.executor(), ParallelExecutor)

    out_serial = serial.run_settings(subset_settings())
    out_parallel = parallel.run_settings(subset_settings())

    assert set(out_serial) == set(out_parallel)
    for key in out_serial:
        dicts_serial = [r.as_dict() for r in out_serial[key].results]
        dicts_parallel = [r.as_dict() for r in out_parallel[key].results]
        assert dicts_serial == dicts_parallel
        assert aggregate(out_serial[key].results) == aggregate(out_parallel[key].results)


def test_parallel_executor_streams_progress_and_preserves_order(tmp_path):
    runner = BenchmarkRunner(BenchmarkConfig(trials=1, seed=5, tasks=subset_tasks(),
                                             jobs=2, cache_dir=tmp_path / "cache"))
    events = []
    outcome = runner.run_setting(setting_by_key("dmi-gpt5-medium"),
                                 progress=events.append)
    assert len(events) == 3
    assert [e.completed for e in events] == [1, 2, 3]
    assert all(e.total == 3 for e in events)
    # Results come back in spec order regardless of completion order.
    assert [r.task_id for r in outcome.results] == list(SUBSET)


def test_serial_executor_streams_progress():
    runner = BenchmarkRunner(BenchmarkConfig(trials=2, seed=5,
                                             tasks=[task_by_id(SUBSET[0])]))
    events = []
    runner.run_setting(setting_by_key("gui-gpt5-medium"), progress=events.append)
    assert [e.completed for e in events] == [1, 2]
    assert {e.spec.task_id for e in events} == {SUBSET[0]}


def test_parallel_executor_rejects_non_registry_work():
    executor = ParallelExecutor(2)
    runner = BenchmarkRunner(BenchmarkConfig(trials=1))
    bogus = [TrialSpec("no-such-task", "gui-gpt5-medium", 0, 1)]
    with pytest.raises(ValueError, match="registry"):
        executor.run(runner, bogus)
    with pytest.raises(ValueError):
        ParallelExecutor(0)


def test_run_settings_deduplicates_repeated_setting_keys():
    runner = BenchmarkRunner(BenchmarkConfig(trials=2, seed=11,
                                             tasks=[task_by_id(SUBSET[0])]))
    setting = setting_by_key("dmi-gpt5-medium")
    outcomes = runner.run_settings([setting, setting])
    assert len(outcomes) == 1
    assert len(outcomes[setting.key].results) == 2  # trials, not trials × 2


def test_serial_executor_runs_caller_supplied_task_objects():
    import dataclasses

    custom = dataclasses.replace(task_by_id("word-02-landscape"),
                                 task_id="custom-landscape")
    runner = BenchmarkRunner(BenchmarkConfig(trials=1, seed=11))
    outcome = runner.run_setting(setting_by_key("dmi-gpt5-medium"), tasks=[custom])
    assert [r.task_id for r in outcome.results] == ["custom-landscape"]


def test_parallel_executor_rejects_customized_registry_tasks():
    import dataclasses

    tweaked = dataclasses.replace(task_by_id("word-02-landscape"),
                                  instruction="do something else")
    runner = BenchmarkRunner(BenchmarkConfig(trials=1, seed=11, tasks=[tweaked],
                                             jobs=2))
    with pytest.raises(ValueError, match="customized"):
        runner.run_setting(setting_by_key("dmi-gpt5-medium"))


def test_parallel_executor_rejects_customized_registry_settings():
    import dataclasses

    from repro.llm.profiles import GPT5_MINIMAL

    tweaked = dataclasses.replace(setting_by_key("dmi-gpt5-medium"),
                                  profile=GPT5_MINIMAL)
    runner = BenchmarkRunner(BenchmarkConfig(trials=1, seed=11,
                                             tasks=[task_by_id("word-02-landscape")],
                                             jobs=2))
    with pytest.raises(ValueError, match="customized"):
        runner.run_setting(tweaked)


def test_parallel_executor_skips_scratch_dir_with_persistent_cache(tmp_path, monkeypatch):
    """Regression: a TemporaryDirectory was created (and fsync'd) even when a
    persistent --cache-dir made it dead weight."""
    import repro.bench.engine as engine

    def explode(*args, **kwargs):
        raise AssertionError("scratch dir must not be created when a "
                             "persistent cache_dir is configured")

    monkeypatch.setattr(engine.tempfile, "TemporaryDirectory", explode)
    runner = BenchmarkRunner(BenchmarkConfig(trials=1, seed=11,
                                             tasks=[task_by_id(SUBSET[0])],
                                             jobs=2, cache_dir=tmp_path / "cache"))
    outcome = runner.run_setting(setting_by_key("gui-gpt5-medium"))
    assert len(outcome.results) == 1


def test_worker_init_forwards_the_cache_bound(tmp_path, monkeypatch):
    """Regression: --cache-max-entries was dropped on the pool-worker side,
    so worker-side cache inserts were unbounded and the documented LRU
    bound did not hold for parallel runs."""
    import repro.bench.engine as engine

    monkeypatch.setattr(engine, "_WORKER_RUNNER", None)
    engine._worker_init(1, 11, DMIConfig(), str(tmp_path / "cache"), 3)
    assert engine._WORKER_RUNNER.cache.max_entries == 3
    # And workers reset the fork-inherited default sink to null, so the
    # parent's events file never receives duplicate trial events.
    from repro.bench import telemetry

    assert telemetry.default_sink() is telemetry.NULL_SINK


def test_parallel_prewarm_counts_cache_hits_and_misses(tmp_path):
    """Regression: the pre-warm path bypassed ArtifactCache.load_or_build, so
    hits/misses under-counted (a warm parallel run reported 0 hits)."""
    config = dict(trials=1, seed=11, tasks=[task_by_id(SUBSET[0])], jobs=2,
                  cache_dir=tmp_path / "cache")
    cold = BenchmarkRunner(BenchmarkConfig(**config))
    cold.run_setting(setting_by_key("gui-gpt5-medium"))
    assert cold.cache.misses == 1 and cold.cache.hits == 0

    warm = BenchmarkRunner(BenchmarkConfig(**config))
    warm.run_setting(setting_by_key("gui-gpt5-medium"))
    assert warm.cache.hits == 1 and warm.cache.misses == 0


# ----------------------------------------------------------------------
# session-result serialisation (crosses the process boundary)
# ----------------------------------------------------------------------
def test_session_result_round_trips_exactly():
    runner = BenchmarkRunner(BenchmarkConfig(trials=1, seed=9))
    result = runner.run_trial(task_by_id("ppt-01-blue-background"),
                              setting_by_key("dmi-gpt5-medium"), 0)
    restored = SessionResult.from_dict(result.as_dict())
    assert restored.as_dict() == result.as_dict()
    assert restored.wall_time_s == result.wall_time_s
    assert len(restored.calls) == len(result.calls)
    assert restored.calls[0] == result.calls[0]


def test_session_result_round_trip_survives_json():
    result = SessionResult(task_id="t", app="word", interface=InterfaceSetting.GUI_ONLY,
                           model="gpt-5", reasoning="medium")
    result.record_call(LLMCallRecord(role="host", purpose="decompose",
                                     prompt_tokens=10, completion_tokens=1, latency_s=0.3))
    from repro.agent.session import FailureRecord
    result.failure = FailureRecord(FailureCause.AMBIGUOUS_TASK, detail="why")
    payload = json.loads(json.dumps(result.as_dict()))
    restored = SessionResult.from_dict(payload)
    assert restored.failure.cause is FailureCause.AMBIGUOUS_TASK
    assert restored.failure.detail == "why"
    assert restored.calls[0].latency_s == 0.3


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------
def test_cache_round_trip_rebuilds_identical_artifacts(tmp_path):
    cache = ArtifactCache(tmp_path, DMIConfig())
    built = cache.load_or_build("powerpoint")
    assert cache.misses == 1 and cache.hits == 0
    assert cache.path_for("powerpoint").exists()

    warm = ArtifactCache(tmp_path, DMIConfig())
    loaded = warm.load_or_build("powerpoint")
    assert warm.hits == 1 and warm.misses == 0
    # The forest/core derived from the persisted UNG serialise identically.
    assert serialize_forest(loaded.forest) == serialize_forest(built.forest)
    assert loaded.core.visible_node_count() == built.core.visible_node_count()
    assert loaded.core.token_estimate() == built.core.token_estimate()
    # The original rip report travels with the cache entry.
    assert loaded.rip_report.clicks == built.rip_report.clicks > 0


def test_warm_cache_skips_gui_ripping_entirely(tmp_path, monkeypatch):
    BenchmarkRunner(BenchmarkConfig(cache_dir=tmp_path)).offline_artifacts("word")

    def explode(self):
        raise AssertionError("warm cache must not rip the GUI")

    monkeypatch.setattr(GuiRipper, "rip", explode)
    warm = BenchmarkRunner(BenchmarkConfig(cache_dir=tmp_path))
    artifacts = warm.offline_artifacts("word")
    assert warm.cache.hits == 1 and warm.cache.misses == 0
    assert artifacts.rip_report.clicks > 0  # original offline cost preserved


def test_cache_key_depends_on_ripper_config_and_app(tmp_path):
    base = DMIConfig()
    shallow = DMIConfig(ripper=RipperConfig(max_depth=2))
    assert config_fingerprint(base) != config_fingerprint(shallow)
    cache = ArtifactCache(tmp_path, base)
    assert cache.path_for("word") != cache.path_for("excel")
    assert (ArtifactCache(tmp_path, shallow).path_for("word")
            != cache.path_for("word"))


def test_cache_treats_corrupt_entries_as_misses(tmp_path):
    cache = ArtifactCache(tmp_path, DMIConfig())
    cache.load_or_build("powerpoint")
    cache.path_for("powerpoint").write_text("{not json", encoding="utf-8")
    again = ArtifactCache(tmp_path, DMIConfig())
    assert again.get("powerpoint") is None
    rebuilt = again.load_or_build("powerpoint")
    assert again.misses == 1
    assert rebuilt.ung.node_count() > 0


def test_cached_artifacts_produce_identical_trial_results(tmp_path):
    task = task_by_id("ppt-01-blue-background")
    setting = setting_by_key("dmi-gpt5-medium")
    cold = BenchmarkRunner(BenchmarkConfig(trials=1, seed=11))
    warm_once = BenchmarkRunner(BenchmarkConfig(trials=1, seed=11, cache_dir=tmp_path))
    warm_twice = BenchmarkRunner(BenchmarkConfig(trials=1, seed=11, cache_dir=tmp_path))
    results = [runner.run_trial(task, setting, 0).as_dict()
               for runner in (cold, warm_once, warm_twice)]
    assert results[0] == results[1] == results[2]
    assert warm_twice.cache.hits == 1
