"""Run the broker-contract conformance suite against every shipped backend.

``tests/broker_contract.py`` holds the suite; this module enrolls all four
broker configurations — :class:`~repro.bench.transport.InMemoryBroker`,
:class:`~repro.bench.transport.LocalDirBroker`, and
:class:`~repro.bench.transport.ObjectStoreBroker` over the in-memory and the
filesystem object store — so every contract clause is asserted identically
across backends.  Backend-specific behaviour (lease filenames, CAS races,
on-disk corruption) lives in ``tests/test_transport.py`` instead.

:class:`TestBrokerContractChaos` enrolls the same four backends *again*
under a seeded hostile :class:`~repro.bench.faults.FaultSchedule` (transient
error bursts on every operation): bounded retry is supposed to make that
weather invisible, so every clause must hold verbatim — same assertions,
zero accommodations.
"""

import pytest

from broker_contract import (
    ALL_BROKER_KINDS,
    CHAOS_BROKER_KINDS,
    BrokerContractSuite,
)


class TestBrokerContract(BrokerContractSuite):
    """All contract clauses × all shipped broker backends."""

    @pytest.fixture(params=ALL_BROKER_KINDS)
    def broker_kind(self, request) -> str:
        return request.param


class TestBrokerContractChaos(BrokerContractSuite):
    """All contract clauses × all backends × a hostile fault schedule."""

    @pytest.fixture(params=CHAOS_BROKER_KINDS)
    def broker_kind(self, request) -> str:
        return request.param
