"""Run the broker-contract conformance suite against every shipped backend.

``tests/broker_contract.py`` holds the suite; this module enrolls all four
broker configurations — :class:`~repro.bench.transport.InMemoryBroker`,
:class:`~repro.bench.transport.LocalDirBroker`, and
:class:`~repro.bench.transport.ObjectStoreBroker` over the in-memory and the
filesystem object store — so every contract clause is asserted identically
across backends.  Backend-specific behaviour (lease filenames, CAS races,
on-disk corruption) lives in ``tests/test_transport.py`` instead.
"""

import pytest

from broker_contract import ALL_BROKER_KINDS, BrokerContractSuite


@pytest.fixture(params=ALL_BROKER_KINDS)
def broker_kind(request) -> str:
    return request.param


class TestBrokerContract(BrokerContractSuite):
    """All contract clauses × all shipped broker backends."""
