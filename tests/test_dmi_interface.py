"""Tests for the DMI facade: offline build, prompt assembly, token accounting."""

from repro.apps import PowerPointApp
from repro.dmi.interface import DMI, DMIConfig, build_dmi_for_app, build_offline_artifacts
from repro.topology.externalize import ExternalizationConfig


def test_offline_artifacts_summary_fields(ppt_artifacts):
    summary = ppt_artifacts.summary()
    for key in ("ung_nodes", "ung_edges", "merge_nodes", "forest_nodes",
                "shared_subtrees", "core_nodes", "core_tokens", "modeling_seconds"):
        assert key in summary
    assert summary["ung_nodes"] > 400
    assert summary["core_nodes"] <= summary["forest_nodes"]


def test_initial_context_contains_usage_prompt_topology_and_digest(ppt_dmi):
    context = ppt_dmi.initial_context()
    assert "Declarative Model Interface" in context
    assert "## Main tree" in context
    assert "passive get_texts" in context


def test_context_token_breakdown_adds_up(ppt_dmi):
    breakdown = ppt_dmi.context_token_breakdown()
    assert breakdown["total"] == (breakdown["usage_prompt"]
                                  + breakdown["navigation_topology"]
                                  + breakdown["dataitem_digest"])
    assert breakdown["navigation_topology"] > 1000


def test_tokens_per_control_is_paper_scale(ppt_dmi):
    """The paper reports ~15 tokens per control; ours should be single-to-low
    double digits, not hundreds."""
    breakdown = ppt_dmi.context_token_breakdown()
    per_control = breakdown["navigation_topology"] / ppt_dmi.core.visible_node_count()
    assert 3.0 <= per_control <= 40.0


def test_further_query_through_facade(ppt_dmi):
    leaf = ppt_dmi.forest.leaf_nodes()[0]
    result = ppt_dmi.further_query([leaf.node_id])
    assert result.tokens > 0
    assert ppt_dmi.query_engine.query_count() == 1


def test_build_dmi_for_app_reuses_artifacts(ppt_artifacts):
    app = PowerPointApp()
    dmi = build_dmi_for_app(app, artifacts=ppt_artifacts)
    assert dmi.app is app
    assert dmi.artifacts is ppt_artifacts


def test_build_offline_artifacts_honours_externalization_config(mini_app):
    config = DMIConfig(externalization=ExternalizationConfig(clone_cost_threshold=0))
    artifacts = build_offline_artifacts(mini_app, config)
    assert artifacts.forest.node_count() > 0


def test_facade_state_and_observation_shortcuts(ppt_dmi):
    assert ppt_dmi.set_scrollbar_pos("Vertical Scroll Bar", None, 40.0).ok
    assert ppt_dmi.get_texts("Notes").ok or True   # Notes may be empty but callable
    assert ppt_dmi.select_controls(["Title"]).ok
