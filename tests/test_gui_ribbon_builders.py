"""Tests for the ribbon / dialog construction helpers."""

from repro.gui.desktop import Desktop
from repro.gui.ribbon import (
    DialogBuilder,
    FONT_FAMILIES,
    RibbonBuilder,
    STANDARD_COLORS,
    THEME_COLORS,
    build_color_dropdown,
    build_font_controls,
    build_gallery_button,
    build_menu_button,
)
from repro.gui.widgets import Window
from repro.uia.control_types import ControlType


def make_window():
    desktop = Desktop()
    window = Window("App")
    desktop.open_window(window, process_id=desktop.register_process("App"))
    return window


def test_ribbon_builder_creates_tabs_groups_and_selection():
    window = make_window()
    ribbon = RibbonBuilder(window, "App")
    ribbon.add_tab("Home", description="home tab")
    ribbon.add_tab("Insert")
    home_group = ribbon.add_group("Home", "Font")
    assert home_group.automation_id == "App.Home.Font"
    ribbon.select_tab("Home")
    assert ribbon.selected_tab_title() == "Home"
    assert ribbon.panels["Home"].visible and not ribbon.panels["Insert"].visible
    ribbon.select_tab("Insert")
    assert ribbon.selected_tab_title() == "Insert"
    assert not ribbon.panels["Home"].visible


def test_color_dropdown_contains_theme_standard_and_more_colors():
    chosen = []
    dropdown = build_color_dropdown("Font Color", on_choice=chosen.append,
                                    extra_items=("No Color",))
    names = {c.name for c in dropdown.iter_descendants()}
    assert set(THEME_COLORS) <= names
    assert set(STANDARD_COLORS) <= names
    assert "More Colors..." in names and "No Color" in names
    cell = [c for c in dropdown.iter_descendants() if c.name == "Teal"][0]
    cell.activate()
    more = [c for c in dropdown.iter_descendants() if c.name == "More Colors..."][0]
    more.activate()
    assert chosen == ["Teal", "Custom"]


def test_menu_button_wires_callbacks():
    calls = []
    dropdown = build_menu_button("Margins", {"Narrow": lambda: calls.append("narrow"),
                                             "Wide": lambda: calls.append("wide")})
    dropdown.activate()
    narrow = [c for c in dropdown.iter_descendants() if c.name == "Narrow"][0]
    narrow.activate()
    assert calls == ["narrow"]
    assert dropdown.control_type == ControlType.SPLIT_BUTTON


def test_gallery_button_and_font_controls():
    chosen = []
    gallery = build_gallery_button("Styles", ("Quote", "Title"), on_choice=chosen.append)
    quote = [c for c in gallery.iter_descendants() if c.name == "Quote"][0]
    quote.activate()
    assert chosen == ["Quote"]

    fonts = []
    sizes = []
    font_box, size_box = build_font_controls("App.Home", on_font=fonts.append,
                                             on_size=sizes.append)
    assert font_box.value == "Calibri"
    assert set(font_box.choices()) == set(FONT_FAMILIES)
    font_box.set_value("Georgia")
    size_box.set_value("14")
    assert fonts == ["Georgia"] and sizes == ["14"]


def test_dialog_builder_composes_tabs_fields_and_groups():
    committed = {}
    builder = DialogBuilder("Options", on_ok=lambda: committed.setdefault("ok", True))
    page = builder.add_tab("General")
    second = builder.add_tab("Advanced")
    edit = builder.add_edit(page, "User name", value="alice",
                            on_commit=lambda v: committed.update(name=v))
    checkbox = builder.add_checkbox(page, "Enable", checked=True,
                                    on_change=lambda v: committed.update(enabled=v))
    builder.add_radio_group(page, "Mode", ("Fast", "Safe"),
                            on_select=lambda v: committed.update(mode=v))
    spinner = builder.add_spinner(second, "Timeout", value=5, maximum=60,
                                  on_change=lambda v: committed.update(timeout=v))
    combo = builder.add_combo(second, "Theme", choices=("Light", "Dark"), value="Light",
                              on_change=lambda v: committed.update(theme=v))
    builder.add_button(second, "Reset", on_click=lambda: committed.update(reset=True))
    dialog = builder.build()

    # The two pages exist and only the selected one is visible after selection.
    tabs = dialog.find_all(control_type=ControlType.TAB_ITEM)
    assert {t.name for t in tabs} == {"General", "Advanced"}
    tabs[0].select()
    assert page.visible and not second.visible

    edit.set_text("bob")
    checkbox.set_checked(False)
    fast = [r for r in dialog.find_all(control_type=ControlType.RADIO_BUTTON)
            if r.name == "Fast"][0]
    fast.activate()
    spinner.set_value(30)
    combo.set_value("Dark")
    [b for b in dialog.find_all(name="Reset")][0].activate()
    dialog.ok_button.activate()

    assert committed == {"name": "bob", "enabled": False, "mode": "Fast", "timeout": 30,
                         "theme": "Dark", "reset": True, "ok": True}
    assert not dialog.is_open
