"""Tests for the GUI ripper, UNG, blocklist and exploration contexts."""

import pytest

from repro.apps import PowerPointApp, WordApp
from repro.ripping.blocklist import AccessBlocklist, default_blocklist_for
from repro.ripping.contexts import DEFAULT_CONTEXT, context_plan_for
from repro.ripping.ripper import GuiRipper, RipperConfig, rip_application
from repro.ripping.ung import NavigationGraph, UNGNode, VIRTUAL_ROOT_ID
from repro.uia.control_types import ControlType
from repro.uia.element import UIElement


# ----------------------------------------------------------------------
# NavigationGraph
# ----------------------------------------------------------------------
def small_graph():
    graph = NavigationGraph(app_name="demo")
    for node_id in ("a", "b", "c"):
        graph.add_node(UNGNode(node_id=node_id, name=node_id.upper(),
                               control_type=ControlType.BUTTON))
    graph.add_edge(VIRTUAL_ROOT_ID, "a")
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    graph.add_edge("b", "c")
    return graph


def test_graph_counts_and_queries():
    graph = small_graph()
    assert graph.node_count() == 4            # + virtual root
    assert graph.edge_count() == 4
    assert graph.successors("a") == ["b", "c"]
    assert graph.predecessors("c") == ["a", "b"]
    assert graph.in_degree("c") == 2
    assert set(graph.leaf_ids()) == {"c"}
    assert graph.merge_node_ids() == ["c"]
    assert not graph.has_cycle()


def test_add_node_merges_metadata():
    graph = NavigationGraph()
    graph.add_node(UNGNode(node_id="x", name="X", control_type=ControlType.BUTTON,
                           contexts={"default"}))
    merged = graph.add_node(UNGNode(node_id="x", name="X", control_type=ControlType.BUTTON,
                                    contexts={"image"}, description="the X button"))
    assert merged.contexts == {"default", "image"}
    assert merged.description == "the X button"
    assert graph.node_count() == 2


def test_add_edge_requires_registered_endpoints_and_deduplicates():
    graph = small_graph()
    with pytest.raises(KeyError):
        graph.add_edge("a", "zzz")
    assert graph.add_edge("a", "b") is False   # duplicate
    assert graph.edge_count() == 4


def test_cycle_detection_and_reachability():
    graph = small_graph()
    graph.add_edge("c", "a")
    assert graph.has_cycle()
    assert graph.reachable_from_root() == {VIRTUAL_ROOT_ID, "a", "b", "c"}


def test_find_nodes_by_name():
    graph = small_graph()
    assert [n.node_id for n in graph.find_nodes_by_name("A")] == ["a"]
    assert graph.find_nodes_by_name("a", exact=False)


def test_to_networkx_mirrors_structure():
    graph = small_graph()
    nx_graph = graph.to_networkx()
    assert nx_graph.number_of_nodes() == 4
    assert nx_graph.number_of_edges() == 4


# ----------------------------------------------------------------------
# blocklist
# ----------------------------------------------------------------------
def test_blocklist_matches_names_substrings_and_prefixes():
    blocklist = AccessBlocklist(names={"Print"}, name_substrings={"export"},
                                automation_id_prefixes={"App.External"})
    assert blocklist.blocks(UIElement(name="Print"))
    assert blocklist.blocks(UIElement(name="Export as PDF"))
    assert blocklist.blocks(UIElement(name="x", automation_id="App.External.Browser"))
    assert not blocklist.blocks(UIElement(name="Save"))


def test_blocklist_merge_and_defaults():
    merged = AccessBlocklist.from_names(["A"]).merged_with(AccessBlocklist.from_names(["B"]))
    assert merged.names == {"A", "B"}
    for app_name in ("Word", "Excel", "PowerPoint", "SomethingElse"):
        defaults = default_blocklist_for(app_name)
        assert "OK" in defaults.names and "Cancel" in defaults.names


# ----------------------------------------------------------------------
# exploration contexts
# ----------------------------------------------------------------------
def test_context_plan_includes_default_first():
    app = PowerPointApp()
    plan = context_plan_for(app)
    assert plan[0].name == DEFAULT_CONTEXT
    assert {c.name for c in plan[1:]} == {"image_selected", "text_box_selected"}


def test_context_plan_for_app_without_contexts():
    app = WordApp()
    assert [c.name for c in context_plan_for(app)] == [DEFAULT_CONTEXT]


# ----------------------------------------------------------------------
# ripper (on the MiniApp fixture and on Word)
# ----------------------------------------------------------------------
def test_ripper_builds_connected_graph(mini_app):
    ung, report = rip_application(mini_app)
    stats = ung.stats()
    assert stats["nodes"] > 40
    assert stats["reachable_from_root"] == stats["nodes"]
    assert report.clicks > 0
    assert report.duration_seconds >= 0
    assert DEFAULT_CONTEXT in report.contexts


def test_ripper_discovers_merge_nodes_for_shared_dialog(mini_app):
    # The two colour drop-downs share the identically named theme galleries,
    # but their identifiers differ (different automation ids), so a true
    # merge arises only for the shared dialog controls in bigger apps; here
    # we check that the colour cells of each drop-down were discovered.
    ung, _ = rip_application(mini_app)
    blues = ung.find_nodes_by_name("Blue")
    assert len(blues) >= 2


def test_ripper_respects_blocklist(mini_app):
    blocklist = AccessBlocklist.from_names({"Open Settings", "OK", "Cancel", "Close"})
    ung, report = rip_application(mini_app, blocklist=blocklist)
    # The dialog never opens, so its contents are absent from the graph.
    assert not ung.find_nodes_by_name("Enable feature")
    assert report.blocked > 0


def test_blocklisted_dialog_buttons_are_recorded_but_not_activated(mini_app):
    ung, _ = rip_application(mini_app)
    ok_nodes = ung.find_nodes_by_name("OK")
    assert ok_nodes, "OK button should be recorded as a node"
    assert all(ung.out_degree(n.node_id) == 0 for n in ok_nodes)


def test_ripper_restores_ui_state_after_exploration(mini_app):
    rip_application(mini_app)
    # No dialogs left open, nothing left expanded.
    assert mini_app.open_dialogs() == []
    dropdown = mini_app.window.find(automation_id="Mini.FontColor")
    assert all(not child.is_on_screen() for child in dropdown.children)


def test_ripper_click_budget_is_respected(mini_app):
    config = RipperConfig(max_clicks=5)
    ripper = GuiRipper(mini_app, config=config)
    ripper.rip()
    assert ripper.report.clicks <= 6


def test_ripper_max_depth_limits_exploration(mini_app):
    shallow = GuiRipper(mini_app, config=RipperConfig(max_depth=1)).rip()
    deep = GuiRipper(type(mini_app)(), config=RipperConfig(max_depth=10)).rip()
    assert shallow.node_count() <= deep.node_count()


def test_word_rip_has_paper_like_structural_properties(word_artifacts):
    ung = word_artifacts.ung
    stats = ung.stats()
    assert stats["nodes"] > 500, "Office-like app should expose hundreds of controls"
    assert stats["merge_nodes"] > 5, "shared dialogs should create merge nodes"
    assert stats["has_cycle"], "More/Less buttons should create a cycle"
    # scoped root initialization: Bold hangs below the Home tab, not the root
    bold = ung.find_nodes_by_name("Bold")[0]
    assert VIRTUAL_ROOT_ID not in ung.predecessors(bold.node_id)


def test_powerpoint_contexts_contribute_contextual_tab_nodes(ppt_artifacts):
    ung = ppt_artifacts.ung
    nodes = ung.find_nodes_by_name("Compress Pictures")
    assert nodes, "Picture Format content requires the image_selected context"
    assert any("image_selected" in n.contexts or "default" in n.contexts for n in nodes)
