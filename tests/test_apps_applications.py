"""Tests for the three simulated applications' UI wiring (clicks mutate state)."""

import pytest

from repro.apps import ExcelApp, PowerPointApp, WordApp
from repro.uia.control_types import ControlType


# ----------------------------------------------------------------------
# generic application behaviour
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory", [WordApp, ExcelApp, PowerPointApp])
def test_application_exposes_rich_control_tree(factory):
    app = factory()
    described = app.describe()
    assert described["controls_in_main_window"] > 300
    assert app.top_window() is app.window
    assert app.window.properties["app_name"] == app.APP_NAME


@pytest.mark.parametrize("factory", [WordApp, ExcelApp, PowerPointApp])
def test_ctrl_s_shortcut_saves(factory):
    app = factory()
    app.state.saved = False
    app.input.keyboard_input("ctrl+s")
    assert app.state.saved


def test_unknown_shortcut_is_ignored():
    app = WordApp()
    assert app.handle_shortcut(app.input.keyboard_input("ctrl+shift+zz")) is False


# ----------------------------------------------------------------------
# Word
# ----------------------------------------------------------------------
def test_word_bold_applies_to_selection():
    app = WordApp()
    app.document.select_paragraphs(2, 2)
    app.input.click(app.window.find(automation_id="Word.Home.Bold"))
    assert app.document.paragraphs[2].format.bold


def test_word_orientation_menu():
    app = WordApp()
    orientation = app.window.find(automation_id="Word.Layout.Orientation")
    app.input.click(orientation)
    landscape = app.window.find(name="Landscape", control_type=ControlType.MENU_ITEM)
    app.input.click(landscape)
    assert app.document.page_orientation == "landscape"


def test_word_font_color_gallery_sets_color():
    app = WordApp()
    app.document.select_paragraphs(0, 0)
    dropdown = app.window.find(automation_id="Word.Home.FontColor")
    app.input.click(dropdown)
    red = [e for e in dropdown.find_all(name="Red")][0]
    app.input.click(red)
    assert app.document.paragraphs[0].format.color == "Red"


def test_word_find_replace_dialog_flow():
    app = WordApp()
    app.input.click(app.window.find(automation_id="Word.Home.Replace"))
    dialog = app.top_window()
    assert dialog.name == "Find and Replace"
    app.input.type_text(dialog.find(name="Find what (Replace)"), "risk")
    app.input.type_text(dialog.find(name="Replace with"), "threat")
    app.input.click(dialog.find(name="Replace All"))
    assert "risk" not in app.document.full_text().lower()


def test_word_find_replace_more_less_cycle():
    app = WordApp()
    app.input.click(app.window.find(automation_id="Word.Home.Replace"))
    dialog = app.top_window()
    more = dialog.find(automation_id="FindReplace.More")
    less = dialog.find(automation_id="FindReplace.Less")
    options = dialog.find(automation_id="FindReplace.SearchOptions")
    assert more.visible and not less.visible and not options.visible
    app.input.click(more)
    assert options.visible and less.visible and not more.visible
    app.input.click(less)
    assert more.visible and not options.visible


def test_word_page_setup_dialog_commits_margins_on_ok():
    app = WordApp()
    app.input.click(app.window.find(automation_id="Word.Layout.PageSetupDialog"))
    dialog = app.top_window()
    app.input.type_text(dialog.find(name="Top margin"), "3.0")
    app.input.click(dialog.find(name="OK"))
    assert app.document.margins["top"] == 3.0
    assert not dialog.is_open


def test_word_word_count_dialog_shows_statistics():
    app = WordApp()
    app.input.click(app.window.find(automation_id="Word.Review.WordCount"))
    dialog = app.top_window()
    label = dialog.find(automation_id="WordCount.Words")
    assert str(app.document.word_count()) in label.name


def test_word_track_changes_and_footer():
    app = WordApp()
    app.input.click(app.window.find(automation_id="Word.Review.TrackChanges"))
    assert app.document.tracked_changes
    footer_menu = app.window.find(automation_id="Word.Insert.Footer")
    app.input.click(footer_menu)
    app.input.click(footer_menu.find(name="Edit Footer"))
    dialog = app.top_window()
    app.input.type_text(dialog.find(name="Footer text"), "Confidential")
    assert app.document.footer_text == "Confidential"


def test_word_scrollbar_updates_document_scroll():
    app = WordApp()
    app.scrollbar.set_position(60)
    assert app.document.scroll_percent == 60


# ----------------------------------------------------------------------
# Excel
# ----------------------------------------------------------------------
def test_excel_name_box_selects_range_on_enter():
    app = ExcelApp()
    app.input.type_text(app.name_box, "C2:C9")
    app.input.keyboard_input("enter")
    assert len(app.sheet.selection) == 8
    assert app.sheet.selected_references()[0] == "C2"


def test_excel_formula_bar_writes_active_cell():
    app = ExcelApp()
    app.input.type_text(app.name_box, "B10")
    app.input.keyboard_input("enter")
    app.input.type_text(app.formula_bar, "500")
    app.input.keyboard_input("enter")
    assert app.sheet.get_value("B10") == 500.0
    # the visible grid mirrors the model
    assert app.grid.cell(9, 1).value == "500"


def test_excel_grid_cell_click_selects_and_edit_writes_model():
    app = ExcelApp()
    cell = app.window.find(automation_id="Excel.Cell.A2")
    app.input.click(cell)
    assert app.sheet.selection == [(1, 0)]
    app.input.type_text(cell, "Northeast")
    assert app.sheet.get_value("A2") == "Northeast"


def test_excel_autosum_inserts_formula_below_selection():
    app = ExcelApp()
    app.sheet.select_range("C2:C9")
    autosum = app.window.find(automation_id="Excel.Home.AutoSum")
    app.input.click(autosum)
    app.input.click(autosum.find(name="Sum"))
    assert app.sheet.get_value("C10") == pytest.approx(2095.0)


def test_excel_conditional_format_dialog():
    app = ExcelApp()
    app.sheet.select_range("E2:E9")
    menu = app.window.find(automation_id="Excel.Home.ConditionalFormatting")
    app.input.click(menu)
    app.input.click(menu.find(name="Greater Than..."))
    dialog = app.top_window()
    app.input.type_text(dialog.find(name="Format cells that are"), "50000")
    app.input.click(dialog.find(name="OK"))
    assert app.sheet.conditional_formats
    assert app.sheet.conditional_fill_for("E2") is not None


def test_excel_sort_buttons_sort_selection():
    app = ExcelApp()
    app.sheet.select_range("A2:E9")
    app.input.click(app.window.find(automation_id="Excel.Data.SortAsc"))
    regions = [app.sheet.get_value(f"A{r}") for r in range(2, 10)]
    assert regions == sorted(regions)


def test_excel_freeze_panes_menu():
    app = ExcelApp()
    menu = app.window.find(automation_id="Excel.View.FreezePanes")
    app.input.click(menu)
    app.input.click(menu.find(name="Freeze Top Row"))
    assert app.sheet.frozen_rows == 1 and app.sheet.frozen_columns == 0


def test_excel_chart_gallery_inserts_chart():
    app = ExcelApp()
    app.sheet.select_range("A1:E9")
    gallery = app.window.find(automation_id="Excel.Insert.ColumnChart")
    app.input.click(gallery)
    app.input.click(gallery.find(name="Clustered Column"))
    assert any("Column" in c.chart_type for c in app.sheet.charts)


def test_excel_number_format_gallery():
    app = ExcelApp()
    app.sheet.select_range("D2:D9")
    gallery = app.window.find(automation_id="Excel.Home.NumberFormat")
    app.input.click(gallery)
    app.input.click(gallery.find(name="Currency"))
    assert app.sheet.cell("D2").format.number_format == "Currency"


def test_excel_contexts_are_not_registered_but_word_has_none_either():
    app = ExcelApp()
    assert app.exploration_contexts() == {}


# ----------------------------------------------------------------------
# PowerPoint
# ----------------------------------------------------------------------
def test_ppt_format_background_apply_to_all():
    app = PowerPointApp()
    app.ribbon.select_tab("Design")
    app.input.click(app.window.find(automation_id="PowerPoint.Design.FormatBackground"))
    dialog = app.top_window()
    app.input.click(dialog.find(automation_id="FormatBackground.SolidFill"))
    fill = dialog.find(automation_id="FormatBackground.FillColor")
    app.input.click(fill)
    app.input.click(fill.find(name="Blue"))
    app.input.click(dialog.find(automation_id="FormatBackground.ApplyToAll"))
    assert all(s.background.color == "Blue" for s in app.presentation.slides)


def test_ppt_scrollbar_changes_active_slide():
    app = PowerPointApp()
    app.scrollbar.set_position(80)
    assert app.presentation.scroll_percent == 80
    assert app.presentation.active_index >= 3


def test_ppt_new_slide_gallery_adds_slide():
    app = PowerPointApp()
    before = app.presentation.slide_count()
    gallery = app.window.find(automation_id="PowerPoint.Home.NewSlide")
    app.input.click(gallery)
    app.input.click(gallery.find(name="Two Content"))
    assert app.presentation.slide_count() == before + 1
    assert app.presentation.slides[-1].layout == "Two Content"


def test_ppt_contextual_tab_appears_when_picture_selected():
    app = PowerPointApp()
    picture_tab = app.ribbon.tabs["Picture Format"]
    assert not picture_tab.visible
    app.enter_context("image_selected")
    assert picture_tab.visible
    app.enter_context("text_box_selected")
    assert not picture_tab.visible
    assert app.ribbon.tabs["Shape Format"].visible


def test_ppt_transition_gallery_and_apply_to_all():
    app = PowerPointApp()
    gallery = app.window.find(automation_id="PowerPoint.Transitions.Effects")
    app.input.click(gallery)
    app.input.click(gallery.find(name="Fade"))
    app.input.click(app.window.find(automation_id="PowerPoint.Transitions.ApplyToAll"))
    assert all(s.transition.effect == "Fade" for s in app.presentation.slides)


def test_ppt_selecting_shape_then_fill_color():
    app = PowerPointApp()
    subtitle = app.window.find(automation_id="PowerPoint.Shape.Subtitle")
    app.input.click(subtitle)
    fill = app.window.find(automation_id="PowerPoint.Home.ShapeFill")
    app.input.click(fill)
    app.input.click(fill.find(name="Gold"))
    assert app.presentation.slides[0].shape_named("Subtitle").format.fill_color == "Gold"


def test_ppt_notes_and_hide_slide():
    app = PowerPointApp()
    app.input.type_text(app.notes_edit, "Remember to thank the team")
    assert "thank the team" in app.presentation.active_slide.notes
    app.input.click(app.window.find(automation_id="PowerPoint.SlideShow.HideSlide"))
    assert app.presentation.active_slide.hidden


def test_ppt_slide_size_menu():
    app = PowerPointApp()
    menu = app.window.find(automation_id="PowerPoint.Design.SlideSize")
    app.input.click(menu)
    app.input.click(menu.find(name="Standard (4:3)"))
    assert app.presentation.slide_size == "4:3"


def test_ppt_exploration_contexts_registered():
    app = PowerPointApp()
    assert set(app.exploration_contexts()) == {"image_selected", "text_box_selected"}
