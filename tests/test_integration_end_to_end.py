"""End-to-end integration tests: the full offline + online pipeline.

These tests exercise the complete chain the paper describes — rip a live
application, build the path-unambiguous forest, hand the core topology to a
planner, execute declaratively through DMI, and verify the *application
state* — plus the headline properties (one-shot completion, policy/mechanism
decoupling, fallback to GUI).
"""

import dataclasses
import random

import pytest

from repro.agent.host_agent import HostAgent
from repro.agent.dmi_agent import DmiAgentConfig
from repro.agent.session import InterfaceSetting
from repro.apps import APP_FACTORIES
from repro.bench.tasks import all_tasks
from repro.dmi.interface import DMI
from repro.llm.profiles import GPT5_MEDIUM

PERFECT = dataclasses.replace(
    GPT5_MEDIUM, grounding_error_rate=0.0, nav_plan_error_rate=0.0,
    composite_error_rate=0.0, visual_parse_error_rate=0.0, semantic_error_rate=0.0,
    instruction_following_error=0.0, recovery_competence=1.0, knows_app_structure=True)


@pytest.fixture(scope="module")
def artifacts_by_app(word_artifacts, excel_artifacts, ppt_artifacts):
    return {"word": word_artifacts, "excel": excel_artifacts, "powerpoint": ppt_artifacts}


def run_task(task, artifacts, interface, profile=PERFECT, seed=0):
    app = APP_FACTORIES[task.app]()
    host = HostAgent(profile, interface, rng=random.Random(seed))
    dmi = DMI(app, artifacts) if interface.uses_dmi else None
    return host.run_task(task, app, artifacts.forest, core=artifacts.core, dmi=dmi,
                         dmi_config=DmiAgentConfig(topology_gap_rate=0.0))


@pytest.mark.parametrize("task", all_tasks(), ids=lambda t: t.task_id)
def test_every_benchmark_task_is_solvable_through_dmi(task, artifacts_by_app):
    """With a perfect policy, GUI+DMI completes every task in the suite."""
    result = run_task(task, artifacts_by_app[task.app], InterfaceSetting.GUI_PLUS_DMI)
    assert result.success, (task.task_id, result.failure, result.notes)
    assert result.steps <= 30


@pytest.mark.parametrize("task_id", [
    "ppt-01-blue-background", "word-03-replace-risk", "excel-02-sum-units",
    "word-06-custom-margins", "excel-05-sort-region",
])
def test_representative_tasks_solvable_through_gui_only(task_id, artifacts_by_app):
    """The imperative baseline can also finish these tasks when no errors are
    injected — the interfaces differ in fragility, not raw capability."""
    task = [t for t in all_tasks() if t.task_id == task_id][0]
    result = run_task(task, artifacts_by_app[task.app], InterfaceSetting.GUI_ONLY)
    assert result.success, (task_id, result.failure, result.notes)


def test_dmi_needs_fewer_core_steps_than_gui_on_the_flagship_task(artifacts_by_app):
    task = [t for t in all_tasks() if t.task_id == "ppt-01-blue-background"][0]
    dmi_result = run_task(task, artifacts_by_app["powerpoint"], InterfaceSetting.GUI_PLUS_DMI)
    gui_result = run_task(task, artifacts_by_app["powerpoint"], InterfaceSetting.GUI_ONLY)
    assert dmi_result.core_steps == 1
    assert gui_result.core_steps >= 3
    assert dmi_result.steps < gui_result.steps


def test_one_shot_share_exceeds_paper_threshold_with_perfect_policy(artifacts_by_app):
    """Paper §5.3: with DMI, most successful single-app tasks complete in a
    single core LLM call (>61%)."""
    one_shot = 0
    successes = 0
    for task in all_tasks():
        result = run_task(task, artifacts_by_app[task.app], InterfaceSetting.GUI_PLUS_DMI)
        if result.success:
            successes += 1
            one_shot += 1 if result.one_shot else 0
    assert successes == 27
    assert one_shot / successes > 0.61


def test_dmi_tolerates_weak_grounding_better_than_gui(artifacts_by_app):
    """Degrading only the mechanism-level abilities hurts the GUI baseline but
    leaves DMI's fast path intact (the policy/mechanism decoupling)."""
    weak_mechanism = dataclasses.replace(
        PERFECT, grounding_error_rate=0.5, nav_plan_error_rate=0.3,
        composite_error_rate=0.7, recovery_competence=0.2)
    tasks = [t for t in all_tasks() if t.task_id in (
        "ppt-01-blue-background", "ppt-02-scroll-to-end", "word-09-red-heading",
        "excel-04-conditional-format", "excel-08-currency-format")]
    dmi_successes = 0
    gui_successes = 0
    for seed, task in enumerate(tasks):
        artifacts = artifacts_by_app[task.app]
        if run_task(task, artifacts, InterfaceSetting.GUI_PLUS_DMI,
                    profile=weak_mechanism, seed=seed).success:
            dmi_successes += 1
        if run_task(task, artifacts, InterfaceSetting.GUI_ONLY,
                    profile=weak_mechanism, seed=seed).success:
            gui_successes += 1
    assert dmi_successes == len(tasks)
    assert gui_successes < len(tasks)


def test_offline_model_is_reusable_across_application_instances(ppt_artifacts):
    """The navigation model is built once per application build and reused
    (paper §5.2): two independent app instances share the same artifacts."""
    task = [t for t in all_tasks() if t.task_id == "ppt-04-fade-transition-all"][0]
    first = run_task(task, ppt_artifacts, InterfaceSetting.GUI_PLUS_DMI, seed=1)
    second = run_task(task, ppt_artifacts, InterfaceSetting.GUI_PLUS_DMI, seed=2)
    assert first.success and second.success
