"""Tests for the version-aware ArtifactCache and its garbage collector.

PR 6 satellites: the app-version-aware ``config_fingerprint`` (a rebuilt
application never serves a stale cached model), the explicit
nanosecond-resolution recency index (deterministic LRU on filesystems with
coarse mtimes), the age/size-bounded ``gc()`` sweep with its telemetry, and
the ``repro cache stats``/``gc`` CLI.
"""

import json
import os

import pytest

from repro.apps.mutable import MutableDemoApp
from repro.bench.telemetry import AggregatingSink, use_sink
from repro.cli import main
from repro.dmi.cache import (
    INDEX_NAME,
    ArtifactCache,
    app_version_for,
    config_fingerprint,
)
from repro.dmi.interface import DMIConfig


# ----------------------------------------------------------------------
# version-aware fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_without_version_matches_legacy_digest():
    config = DMIConfig()
    assert config_fingerprint(config) == config_fingerprint(config,
                                                            app_version="")


def test_fingerprint_folds_app_version_in():
    config = DMIConfig()
    v1 = config_fingerprint(config, app_version="1.0")
    v2 = config_fingerprint(config, app_version="2.0")
    legacy = config_fingerprint(config)
    assert len({v1, v2, legacy}) == 3


def test_app_version_resolution():
    assert app_version_for("word") == "1.0"
    assert app_version_for("no-such-app") == ""
    assert app_version_for("anything", factory=MutableDemoApp) == "1.0"

    class Rebuilt(MutableDemoApp):
        APP_VERSION = "2.0"

    assert app_version_for("anything", factory=Rebuilt) == "2.0"


def test_rebuilt_app_version_addresses_a_fresh_cache_slot(tmp_path):
    """Satellite acceptance: bumping APP_VERSION must miss the old entry
    and rebuild, never serve the previous build's model."""

    class RebuiltDemo(MutableDemoApp):
        APP_VERSION = "2.0"

    cache = ArtifactCache(tmp_path / "cache")
    cache.load_or_build("mutable-demo", factory=MutableDemoApp)
    assert cache.misses == 1
    # Same name, same config — but a new build version: cold again.
    cache.load_or_build("mutable-demo", factory=RebuiltDemo)
    assert cache.misses == 2 and cache.hits == 0
    # Both builds now coexist under distinct version-aware keys.
    assert cache.path_for("mutable-demo", app_version="1.0").exists()
    assert cache.path_for("mutable-demo", app_version="2.0").exists()
    cache.load_or_build("mutable-demo", factory=MutableDemoApp)
    cache.load_or_build("mutable-demo", factory=RebuiltDemo)
    assert cache.hits == 2


# ----------------------------------------------------------------------
# the recency index
# ----------------------------------------------------------------------
def _entry_names(cache):
    return [path.name for path in cache._entries_oldest_first()]


def test_recency_survives_identical_mtimes(tmp_path):
    """The satellite's motivating failure: on a coarse-mtime filesystem
    every entry can share one mtime, yet eviction order must still follow
    last-load order.  Equalize all mtimes and check the index decides."""
    cache = ArtifactCache(tmp_path / "cache", max_entries=2)
    cache.load_or_build("word")
    cache.load_or_build("powerpoint")
    for name in ("word", "powerpoint"):
        os.utime(cache.path_for(name), (1000, 1000))  # same coarse tick
    assert _entry_names(cache) == [cache.path_for("word").name,
                                   cache.path_for("powerpoint").name]
    cache.load_or_build("excel")  # evicts word, the least recently loaded
    assert not cache.path_for("word").exists()
    assert cache.path_for("powerpoint").exists()


def test_recency_index_is_a_dotfile_not_a_cache_entry(tmp_path):
    cache = ArtifactCache(tmp_path / "cache", max_entries=1)
    cache.load_or_build("word")
    assert (tmp_path / "cache" / INDEX_NAME).exists()
    # The index never shows up as an evictable entry.
    assert _entry_names(cache) == [cache.path_for("word").name]
    stats = cache.gc(max_total_bytes=0)
    assert stats["evicted"] == 1
    assert (tmp_path / "cache" / INDEX_NAME).exists()


def test_foreign_entries_fall_back_to_mtime(tmp_path):
    """Entries some other writer dropped into the directory (absent from
    the index) still order deterministically by mtime."""
    cache = ArtifactCache(tmp_path / "cache")
    cache.load_or_build("word")
    foreign = tmp_path / "cache" / "foreign-entry.json"
    foreign.write_text("{}", encoding="utf-8")
    os.utime(foreign, (1, 1))  # ancient
    assert _entry_names(cache)[0] == "foreign-entry.json"


# ----------------------------------------------------------------------
# gc(): age and size bounds
# ----------------------------------------------------------------------
def _age_entry(cache, app_name: str, age_ns: int) -> None:
    """Rewrite the recency index so one entry looks ``age_ns`` old."""
    index_path = cache.cache_dir / INDEX_NAME
    index = json.loads(index_path.read_text(encoding="utf-8"))
    name = cache.path_for(app_name).name
    index[name] = index[name] - age_ns
    index_path.write_text(json.dumps(index), encoding="utf-8")


def test_gc_age_bound_evicts_only_stale_entries(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    cache.load_or_build("word")
    cache.load_or_build("powerpoint")
    _age_entry(cache, "word", int(3600e9))  # one hour old
    with use_sink(AggregatingSink()) as sink:
        stats = cache.gc(max_age_s=600)
    assert stats["evicted"] == 1 and stats["reclaimed_bytes"] > 0
    assert not cache.path_for("word").exists()
    assert cache.path_for("powerpoint").exists()
    assert stats["remaining_entries"] == 1
    assert sink.count("cache_evicted") == 1
    assert sink.count("cache_gc") == 1
    assert cache.evictions == 1


def test_gc_size_bound_evicts_oldest_first_until_budget_holds(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    for app_name in ("word", "powerpoint", "excel"):
        cache.load_or_build(app_name)
    keep = cache.path_for("excel").stat().st_size  # the newest entry
    stats = cache.gc(max_total_bytes=keep)
    assert stats["evicted"] == 2
    assert not cache.path_for("word").exists()
    assert not cache.path_for("powerpoint").exists()
    assert cache.path_for("excel").exists()
    assert stats["remaining_bytes"] <= keep


def test_gc_without_bounds_is_an_inventory_noop(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    cache.load_or_build("word")
    with use_sink(AggregatingSink()) as sink:
        stats = cache.gc()
    assert stats["evicted"] == 0
    assert stats["remaining_entries"] == 1
    assert sink.count("cache_gc") == 1
    assert cache.path_for("word").exists()


def test_gc_enforces_both_bounds_together(tmp_path):
    """Acceptance: one sweep applies the age bound, then the byte budget."""
    cache = ArtifactCache(tmp_path / "cache")
    for app_name in ("word", "powerpoint", "excel"):
        cache.load_or_build(app_name)
    _age_entry(cache, "powerpoint", int(3600e9))
    stats = cache.gc(max_age_s=600, max_total_bytes=0)
    assert stats["evicted"] == 3
    assert stats["remaining_entries"] == 0 and stats["remaining_bytes"] == 0
    assert cache.evictions == 3


def test_gc_tolerates_corrupt_index(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    cache.load_or_build("word")
    (tmp_path / "cache" / INDEX_NAME).write_text("not json", encoding="utf-8")
    stats = cache.gc(max_total_bytes=0)  # falls back to mtimes, still sweeps
    assert stats["evicted"] == 1


def test_inventory_lists_entries_with_sizes_and_ages(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    cache.load_or_build("word")
    rows = cache.inventory()
    assert len(rows) == 1
    assert rows[0]["entry"] == cache.path_for("word").name
    assert rows[0]["bytes"] > 0 and rows[0]["age_s"] >= 0.0


# ----------------------------------------------------------------------
# the CLI: repro cache stats / gc
# ----------------------------------------------------------------------
@pytest.fixture
def warm_cache_dir(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    cache.load_or_build("word")
    cache.load_or_build("powerpoint")
    return tmp_path / "cache"


def test_cache_stats_lists_entries(warm_cache_dir, capsys):
    assert main(["cache", "stats", "--cache-dir", str(warm_cache_dir)]) == 0
    output = capsys.readouterr().out
    assert "word-" in output and "powerpoint-" in output
    assert "2 entries" in output


def test_cache_stats_on_empty_dir(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["cache", "stats", "--cache-dir", str(empty)]) == 0
    assert "empty" in capsys.readouterr().out


def test_cache_stats_requires_a_directory(tmp_path):
    with pytest.raises(SystemExit, match="not a directory"):
        main(["cache", "stats", "--cache-dir", str(tmp_path / "missing")])


def test_cache_gc_cli_enforces_size_bound(warm_cache_dir, capsys):
    assert main(["cache", "gc", "--cache-dir", str(warm_cache_dir),
                 "--max-bytes", "0"]) == 0
    output = capsys.readouterr().out
    assert "evicted 2 entries" in output
    assert "0 remaining" in output
    assert [p.name for p in warm_cache_dir.glob("*.json")
            if not p.name.startswith(".")] == []


def test_cache_gc_cli_records_registry_run(warm_cache_dir, tmp_path, capsys):
    """Acceptance: gc eviction counters are visible through `repro runs
    show` when the sweep is recorded in a registry."""
    registry = tmp_path / "registry"
    assert main(["cache", "gc", "--cache-dir", str(warm_cache_dir),
                 "--max-bytes", "0", "--registry", str(registry)]) == 0
    out = capsys.readouterr().out
    assert "recorded run" in out
    run_id = next(line.split()[2] for line in out.splitlines()
                  if line.startswith("recorded run"))
    assert main(["runs", "show", run_id, "--registry", str(registry)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["executor"] == "cache-gc"
    assert payload["counters"]["cache_gc"] == 1
    assert payload["counters"]["cache_evicted"] == 2
    assert payload["context"]["evicted"] == 2


def test_cache_gc_cli_without_bounds_warns(warm_cache_dir, capsys):
    assert main(["cache", "gc", "--cache-dir", str(warm_cache_dir)]) == 0
    captured = capsys.readouterr()
    assert "nothing to evict" in captured.err
    assert len([p for p in warm_cache_dir.glob("*.json")
                if not p.name.startswith(".")]) == 2
