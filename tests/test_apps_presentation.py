"""Tests for the PowerPoint-like presentation model."""

import pytest

from repro.apps.presentation import Presentation, Shape, Slide, sample_presentation


def test_slides_have_title_shape_and_ids():
    deck = Presentation(slide_count=3)
    assert deck.slide_count() == 3
    assert deck.slides[0].title_text() == "Slide 1"
    ids = {slide.slide_id for slide in deck.slides}
    assert len(ids) == 3


def test_goto_add_delete_duplicate_slides():
    deck = Presentation(slide_count=2)
    deck.add_slide(layout="Two Content", title="New")
    assert deck.slide_count() == 3
    deck.goto_slide(2)
    assert deck.active_slide.layout == "Two Content"
    with pytest.raises(IndexError):
        deck.goto_slide(9)
    copy = deck.duplicate_slide(0)
    assert copy.title_text() == deck.slides[0].title_text()
    assert deck.slide_count() == 4
    deck.delete_slide(3)
    assert deck.slide_count() == 3
    assert not deck.saved


def test_add_text_box_picture_and_shape_queries():
    slide = Slide(title="T")
    box = slide.add_text_box("hello", name="Body")
    picture = slide.add_picture("img.png")
    assert slide.shape_named("Body") is box
    assert slide.pictures() == [picture]
    assert "hello" in slide.text_content()
    slide.remove_shape(box)
    assert slide.shape_named("Body") is None


def test_background_single_vs_all(capsys=None):
    deck = Presentation(slide_count=4)
    deck.goto_slide(2)
    affected = deck.set_background("Blue")
    assert affected == 1
    assert deck.slides[2].background.color == "Blue"
    assert deck.slides[0].background.color == "White"
    affected = deck.set_background("Green", apply_to_all=True)
    assert affected == 4
    assert all(s.background.color == "Green" for s in deck.slides)


def test_shape_selection_and_formatting():
    deck = Presentation(slide_count=1)
    shape = deck.active_slide.add_text_box("x", name="Box")
    assert not deck.apply_format_to_selection(fill_color="Gold")
    deck.select_shape(shape)
    assert deck.apply_format_to_selection(fill_color="Gold", bold=True)
    assert shape.format.fill_color == "Gold" and shape.format.bold
    with pytest.raises(AttributeError):
        deck.apply_format_to_selection(bogus=1)


def test_transitions_single_and_all():
    deck = Presentation(slide_count=3)
    deck.set_transition("Fade")
    assert deck.active_slide.transition.effect == "Fade"
    assert deck.slides[1].transition.effect == "None"
    deck.set_transition("Morph", apply_to_all=True, duration_seconds=2.0)
    assert all(s.transition.effect == "Morph" for s in deck.slides)
    assert deck.slides[2].transition.duration_seconds == 2.0


def test_notes_slideshow_and_scroll():
    deck = Presentation(slide_count=5)
    deck.set_notes("remember", index=3)
    assert deck.slides[3].notes == "remember"
    deck.goto_slide(2)
    deck.start_slideshow(from_beginning=False)
    assert deck.slideshow_from == 2
    deck.start_slideshow(True)
    assert deck.slideshow_from == 0
    deck.scroll_to(100)
    assert deck.active_index == 4
    deck.scroll_to(0)
    assert deck.active_index == 0


def test_save_and_summary():
    deck = Presentation()
    deck.set_background("Blue")
    deck.save(file_format="pdf")
    assert deck.saved and deck.file_format == "pdf"
    summary = deck.summary()
    assert summary["slides"] == 1 and summary["backgrounds"] == ["Blue"]


def test_sample_presentation_contents():
    deck = sample_presentation()
    assert deck.slide_count() == 5
    assert deck.slides[0].shape_named("Subtitle") is not None
    assert deck.slides[2].pictures()
    assert deck.slides[0].title_text() == "Product Launch"
