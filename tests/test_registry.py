"""Tests for the run registry, the runs diff/trajectory, and `repro runs`.

The acceptance-criteria tests for PR 5 live here: a sharded broker run
through the CLI with ``--registry`` produces a RunRecord whose trial count,
cache hit/miss and lease-lifecycle counters are asserted; ``repro runs
diff`` exits nonzero exactly when a ``--fail-if`` threshold trips; and
``repro runs export --bench`` writes a valid ``BENCH_5.json`` trajectory.
"""

import json

import pytest

from repro.bench.registry import (
    EXECUTOR_PATHS,
    RegistryError,
    RunRecord,
    RunRegistry,
    build_run_record,
    config_key,
)
from repro.bench.telemetry import AggregatingSink, CacheMiss, WorkerIdle
from repro.bench.trajectory import (
    DiffRow,
    FailIf,
    bench_datapoint,
    check_fail_ifs,
    diff_runs,
    export_bench,
    flatten_metrics,
    infer_pr_number,
    render_diff,
)
from repro.cli import main


GRID = dict(seed=11, trials=1, setting_keys=("dmi-gpt5-medium",),
            task_ids=("ppt-01-blue-background",), fingerprint="f" * 16)


def make_record(run_id="20260101-000000-aaaaaa", executor="serial",
                wall=10.0, counters=None, metrics=None,
                timers=None) -> RunRecord:
    return RunRecord(
        run_id=run_id, created_at="2026-01-01T00:00:00Z", executor=executor,
        seed=GRID["seed"], trials=GRID["trials"],
        jobs=1, setting_keys=GRID["setting_keys"],
        task_ids=GRID["task_ids"], fingerprint=GRID["fingerprint"],
        config_key=config_key(**GRID), trial_count=1, wall_clock_s=wall,
        counters=dict(counters or {}), timers=dict(timers or {}),
        metrics=dict(metrics if metrics is not None
                     else {"dmi-gpt5-medium": {"SR": 100.0, "steps": 4.0}}))


# ----------------------------------------------------------------------
# RunRecord round trips + validation
# ----------------------------------------------------------------------
def test_run_record_round_trips_through_dict():
    record = make_record(counters={"cache_miss": 2},
                         timers={"trial_wall_s": {"count": 1,
                                                  "total_s": 5.0}})
    rebuilt = RunRecord.from_dict(record.as_dict())
    assert rebuilt == record


def test_run_record_validation_names_field_and_source():
    payload = make_record().as_dict()
    with pytest.raises(RegistryError, match="'kind'"):
        RunRecord.from_dict(dict(payload, kind="nope"), source="X")
    with pytest.raises(RegistryError, match="format_version"):
        RunRecord.from_dict(dict(payload, format_version=99), source="X")
    with pytest.raises(RegistryError, match="X: .*'executor'"):
        RunRecord.from_dict(dict(payload, executor="warp-drive"), source="X")
    missing = dict(payload)
    del missing["trial_count"]
    with pytest.raises(RegistryError, match="X: missing required field "
                                            "'trial_count'"):
        RunRecord.from_dict(missing, source="X")
    with pytest.raises(RegistryError, match="'counters.cache_miss'"):
        RunRecord.from_dict(dict(payload, counters={"cache_miss": "two"}),
                            source="X")
    with pytest.raises(RegistryError, match="'seed' must be an integer"):
        RunRecord.from_dict(dict(payload, seed="eleven"), source="X")


def test_config_key_ignores_executor_but_not_the_grid():
    assert make_record(executor="serial").config_key \
        == make_record(executor="store-broker").config_key
    other = dict(GRID, seed=12)
    assert config_key(**other) != config_key(**GRID)


def test_config_key_subset_marks_partial_runs():
    """A record covering one shard of a plan must never read as comparable
    to a full run of the same grid — only to the identical slice."""
    full = config_key(**GRID)
    slice_a = config_key(**GRID, subset="shards-0-of-2")
    slice_b = config_key(**GRID, subset="shards-1-of-2")
    assert full != slice_a and slice_a != slice_b
    assert config_key(**GRID, subset="shards-0-of-2") == slice_a
    assert config_key(**GRID, subset=None) == full
    record = build_run_record(
        "20260101-000000-dddddd", executor="file-shard",
        subset="shards-0-of-2", results_by_setting={}, wall_clock_s=0.1,
        **dict(jobs=1, seed=GRID["seed"], trials=GRID["trials"],
               setting_keys=GRID["setting_keys"], task_ids=GRID["task_ids"],
               fingerprint=GRID["fingerprint"]))
    assert record.config_key == slice_a
    assert record.context["subset"] == "shards-0-of-2"


def test_build_run_record_aggregates_sink_and_metrics():
    sink = AggregatingSink()
    sink.emit(CacheMiss(app="word"))
    sink.emit(WorkerIdle(worker_id="w", slept_s=0.5, streak=0))
    record = build_run_record(
        "20260101-000000-bbbbbb", executor="dir-broker", seed=11, trials=1,
        jobs=2, setting_keys=GRID["setting_keys"], task_ids=GRID["task_ids"],
        fingerprint=GRID["fingerprint"], results_by_setting={},
        wall_clock_s=1.5, sink=sink, context={"broker": "/tmp/q"})
    assert record.counters == {"cache_miss": 1, "worker_idle": 1}
    assert record.timers["idle_sleep_s"]["total_s"] == 0.5
    assert record.trial_count == 0 and record.metrics == {}
    assert record.context["broker"] == "/tmp/q"
    with pytest.raises(RegistryError, match="executor"):
        build_run_record("x", executor="bogus", seed=1, trials=1, jobs=1,
                         setting_keys=(), task_ids=(), fingerprint="f",
                         results_by_setting={}, wall_clock_s=0.0)


# ----------------------------------------------------------------------
# RunRegistry
# ----------------------------------------------------------------------
def test_registry_records_lists_and_loads(tmp_path):
    registry = RunRegistry(tmp_path / "registry")
    assert registry.run_ids() == [] and registry.latest() is None
    first = make_record("20260101-000000-aaaaaa")
    second = make_record("20260102-000000-bbbbbb", executor="parallel")
    registry.record(first)
    registry.record(second)
    assert registry.run_ids() == [first.run_id, second.run_id]
    assert registry.load(first.run_id) == first
    assert registry.latest() == second
    assert registry.load_all() == [first, second]
    with pytest.raises(RegistryError, match="already recorded"):
        registry.record(first)


def test_registry_resolves_unique_prefixes(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(make_record("20260101-000000-aaaaaa"))
    registry.record(make_record("20260102-000000-bbbbbb"))
    assert registry.resolve("20260102").run_id == "20260102-000000-bbbbbb"
    with pytest.raises(RegistryError, match="ambiguous"):
        registry.resolve("2026")
    with pytest.raises(RegistryError, match="no run 'zzz'"):
        registry.resolve("zzz")


def test_load_all_tolerant_skips_bad_files_and_reports_them(tmp_path):
    registry = RunRegistry(tmp_path)
    good = make_record("20260101-000000-aaaaaa")
    registry.record(good)
    (tmp_path / "stray-notes.json").write_text("{not json", encoding="utf-8")
    records, problems = registry.load_all_tolerant()
    assert records == [good]
    assert len(problems) == 1 and "stray-notes.json" in problems[0]


def test_registry_rejects_corrupt_records_naming_the_path(tmp_path):
    registry = RunRegistry(tmp_path)
    (tmp_path / "bad-record.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(RegistryError, match="bad-record.json"):
        registry.load("bad-record")
    mismatched = make_record("20260101-000000-cccccc")
    registry.path_for("wrong-name").write_text(
        json.dumps(mismatched.as_dict()), encoding="utf-8")
    with pytest.raises(RegistryError, match="does not match the file name"):
        registry.load("wrong-name")


def test_registry_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_REGISTRY", raising=False)
    assert RunRegistry.from_env(None) is None
    assert RunRegistry.from_env(tmp_path).root == tmp_path
    monkeypatch.setenv("REPRO_REGISTRY", str(tmp_path / "from-env"))
    assert RunRegistry.from_env(None).root == tmp_path / "from-env"
    # An explicit flag wins over the environment.
    assert RunRegistry.from_env(tmp_path).root == tmp_path


def test_new_run_ids_are_unique_and_sortable(tmp_path):
    registry = RunRegistry(tmp_path)
    ids = {registry.new_run_id() for _ in range(32)}
    assert len(ids) == 32


def test_same_second_run_ids_stay_unique_and_in_creation_order(tmp_path,
                                                               monkeypatch):
    """PR 9 satellite: a stalled clock (same second — or same microsecond)
    must not collide ids or scramble ``runs list`` newest-first ordering.
    The monotonic bump guarantees creation order == lexicographic order
    within a process even when ``time.time`` is frozen."""
    import repro.bench.registry as registry_module

    registry = RunRegistry(tmp_path)
    frozen = 1754650000.123456
    monkeypatch.setattr(registry_module.time, "time", lambda: frozen)
    ids = [registry.new_run_id() for _ in range(50)]
    assert len(set(ids)) == 50
    assert ids == sorted(ids), "same-second ids lost creation order"
    assert all(len(run_id) == 29 for run_id in ids)  # `runs list` width

    # A clock stepping *backwards* (NTP) can't reorder either: the floor
    # only moves forward.
    monkeypatch.setattr(registry_module.time, "time", lambda: frozen - 120.0)
    later = registry.new_run_id()
    assert later > ids[-1], "backwards clock produced an earlier-sorting id"


# ----------------------------------------------------------------------
# diff + fail-if
# ----------------------------------------------------------------------
def test_flatten_metrics_namespace():
    record = make_record(
        wall=2.0, counters={"cache_miss": 3},
        timers={"trial_wall_s": {"count": 1, "total_s": 131.0}})
    flat = flatten_metrics(record)
    assert flat["wall_clock"] == 2.0
    assert flat["trial_count"] == 1.0
    assert flat["cache_miss"] == 3.0
    assert flat["trial_wall_s_total_s"] == 131.0
    assert flat["dmi-gpt5-medium.SR"] == 100.0
    # Known event counters with no recorded events read as explicit zeros
    # (a run with no cache misses gates as cache_miss == 0, not "missing").
    assert flat["cache_evicted"] == 0.0
    assert flat["lease_lost"] == 0.0
    assert "unknown_metric" not in flat


def test_diff_runs_rows_and_percent():
    before = make_record(wall=10.0, counters={"cache_miss": 2})
    after = make_record("20260102-000000-bbbbbb", wall=11.0,
                        counters={"cache_hit": 2})
    rows = {row.metric: row for row in diff_runs(before, after)}
    assert rows["wall_clock"].delta == pytest.approx(1.0)
    assert rows["wall_clock"].percent == pytest.approx(10.0)
    # Counters absent from one record are zeros, so deltas stay numeric.
    assert rows["cache_miss"].after == 0.0
    assert rows["cache_miss"].delta == pytest.approx(-2.0)
    assert rows["cache_hit"].before == 0.0
    text = render_diff(before, after, list(rows.values()))
    assert "wall_clock" in text and "+10.0%" in text


def test_gating_on_a_zero_event_counter_passes(tmp_path, capsys):
    """A --fail-if gate on an event that never fired (counter absent from
    both records) must treat the counter as 0, not 'missing' — the
    healthiest run must not trip the gate."""
    registry = RunRegistry(tmp_path)
    registry.record(make_record("20260101-000000-aaaaaa", counters={}))
    registry.record(make_record("20260102-000000-bbbbbb", counters={}))
    assert main(["runs", "diff", "20260101", "20260102",
                 "--registry", str(tmp_path),
                 "--fail-if", "cache_miss>+0",
                 "--fail-if", "lease_lost>+0"]) == 0
    capsys.readouterr()


def test_diff_warns_on_unlike_config_keys():
    before = make_record()
    after = RunRecord(**dict(
        make_record("20260102-000000-bbbbbb").__dict__, seed=99,
        config_key=config_key(**dict(GRID, seed=99))))
    text = render_diff(before, after, diff_runs(before, after))
    assert "different grids" in text


def test_fail_if_parsing():
    spec = FailIf.parse("wall_clock>+10%")
    assert spec == FailIf(metric="wall_clock", op=">", value=10.0,
                          percent=True)
    assert FailIf.parse("cache_hit<-2").percent is False
    assert FailIf.parse(" trial_wall_s_total_s > 0.5 ").value == 0.5
    for bad in ("wall_clock", "wall_clock=>5", ">5%", "wall_clock>ten"):
        with pytest.raises(RegistryError, match="invalid --fail-if"):
            FailIf.parse(bad)


def test_fail_if_percent_and_absolute_semantics():
    spec = FailIf.parse("wall_clock>+10%")
    ok = DiffRow("wall_clock", before=10.0, after=10.9)       # +9%
    slow = DiffRow("wall_clock", before=10.0, after=11.5)     # +15%
    assert spec.check(ok) is None
    assert "exceeds" in spec.check(slow)
    absolute = FailIf.parse("cache_hit<-2")
    assert absolute.check(DiffRow("cache_hit", 10.0, 8.0)) is None   # -2: ok
    assert absolute.check(DiffRow("cache_hit", 10.0, 7.0)) is not None
    # A zero baseline: any move in the failing direction trips a % spec.
    assert spec.check(DiffRow("wall_clock", 0.0, 0.1)) is not None
    assert spec.check(DiffRow("wall_clock", 0.0, 0.0)) is None
    # Missing metrics cannot be gated on.
    assert "missing" in spec.check(DiffRow("wall_clock", None, 5.0))
    violations = check_fail_ifs([], [spec])
    assert violations and "missing from both" in violations[0]


# ----------------------------------------------------------------------
# the BENCH_*.json trajectory
# ----------------------------------------------------------------------
def test_export_bench_writes_the_trajectory(tmp_path):
    records = [make_record("20260102-000000-bbbbbb", wall=2.0),
               make_record("20260101-000000-aaaaaa", wall=1.0)]
    target = tmp_path / "BENCH_5.json"
    payload = export_bench(records, target)
    on_disk = json.loads(target.read_text(encoding="utf-8"))
    assert on_disk == payload
    assert payload["kind"] == "repro-bench-trajectory"
    assert payload["format_version"] == 1
    assert payload["pr"] == 5  # inferred from the file name
    points = payload["datapoints"]
    assert [p["run_id"] for p in points] == ["20260101-000000-aaaaaa",
                                             "20260102-000000-bbbbbb"]
    assert points[0]["metrics"]["wall_clock"] == 1.0
    assert points[0]["executor"] in EXECUTOR_PATHS


def test_export_bench_pr_inference_and_override(tmp_path):
    assert infer_pr_number("BENCH_12.json") == 12
    assert infer_pr_number("bench.json") is None
    payload = export_bench([make_record()], tmp_path / "custom.json", pr=7)
    assert payload["pr"] == 7
    payload = export_bench([make_record()], tmp_path / "custom.json")
    assert payload["pr"] is None
    with pytest.raises(RegistryError, match="no run records"):
        export_bench([], tmp_path / "BENCH_0.json")
    assert bench_datapoint(make_record())["settings"] == 1


# ----------------------------------------------------------------------
# the `repro runs` CLI
# ----------------------------------------------------------------------
def _seed_registry(tmp_path) -> RunRegistry:
    registry = RunRegistry(tmp_path / "registry")
    registry.record(make_record("20260101-000000-aaaaaa", wall=10.0,
                                counters={"cache_miss": 2, "cache_hit": 0}))
    registry.record(make_record("20260102-000000-bbbbbb", wall=13.0,
                                counters={"cache_miss": 2, "cache_hit": 0}))
    return registry


def test_runs_list_and_show(tmp_path, capsys):
    registry = _seed_registry(tmp_path)
    assert main(["runs", "list", "--registry", str(registry.root)]) == 0
    output = capsys.readouterr().out
    assert "20260101-000000-aaaaaa" in output and "serial" in output
    assert main(["runs", "list", "--registry", str(registry.root),
                 "--ids"]) == 0
    assert capsys.readouterr().out.splitlines() == [
        "20260102-000000-bbbbbb", "20260101-000000-aaaaaa"]  # newest first
    assert main(["runs", "show", "20260101", "--registry",
                 str(registry.root)]) == 0
    shown = json.loads(capsys.readouterr().out)
    assert shown["run_id"] == "20260101-000000-aaaaaa"


def test_runs_list_and_export_skip_unreadable_records(tmp_path, capsys):
    """One torn or stray file must not make the whole registry
    unlistable/unexportable; it is skipped with a stderr warning."""
    registry = _seed_registry(tmp_path)
    (registry.root / "stray.json").write_text("{torn", encoding="utf-8")
    assert main(["runs", "list", "--registry", str(registry.root),
                 "--ids"]) == 0
    captured = capsys.readouterr()
    assert len(captured.out.splitlines()) == 2      # the two good records
    assert "skipping unreadable run record" in captured.err
    target = tmp_path / "BENCH_9.json"
    assert main(["runs", "export", "--registry", str(registry.root),
                 "--bench", str(target)]) == 0
    capsys.readouterr()
    assert len(json.loads(target.read_text())["datapoints"]) == 2


def test_runs_requires_a_registry(monkeypatch):
    monkeypatch.delenv("REPRO_REGISTRY", raising=False)
    with pytest.raises(SystemExit, match="no run registry"):
        main(["runs", "list"])


def test_runs_registry_env_var(tmp_path, capsys, monkeypatch):
    registry = _seed_registry(tmp_path)
    monkeypatch.setenv("REPRO_REGISTRY", str(registry.root))
    assert main(["runs", "list", "--ids"]) == 0
    assert len(capsys.readouterr().out.splitlines()) == 2


def test_runs_diff_exits_nonzero_on_regression(tmp_path, capsys):
    """Acceptance: a synthetic +30% wall-clock regression past --fail-if
    wall_clock>+10% exits 1 and names the offending metric on stderr."""
    registry = _seed_registry(tmp_path)
    root = str(registry.root)
    assert main(["runs", "diff", "20260101", "20260102",
                 "--registry", root]) == 0
    capsys.readouterr()
    code = main(["runs", "diff", "20260101", "20260102", "--registry", root,
                 "--fail-if", "wall_clock>+10%"])
    captured = capsys.readouterr()
    assert code == 1
    assert "regression: wall_clock" in captured.err
    assert "+30.0%" in captured.err
    # The same threshold passes when the delta is inside it.
    assert main(["runs", "diff", "20260101", "20260102", "--registry", root,
                 "--fail-if", "wall_clock>+50%",
                 "--fail-if", "cache_miss>+0",
                 "--fail-if", "trial_count>+0"]) == 0
    # Gating on a metric neither run carries is itself a failure.
    capsys.readouterr()
    assert main(["runs", "diff", "20260101", "20260102", "--registry", root,
                 "--fail-if", "no_such_metric>+1"]) == 1
    with pytest.raises(SystemExit, match="invalid --fail-if"):
        main(["runs", "diff", "20260101", "20260102", "--registry", root,
              "--fail-if", "walrus"])
    with pytest.raises(SystemExit, match="no run 'zzz'"):
        main(["runs", "diff", "zzz", "20260102", "--registry", root])


def test_runs_export_cli(tmp_path, capsys):
    registry = _seed_registry(tmp_path)
    target = tmp_path / "BENCH_5.json"
    assert main(["runs", "export", "--registry", str(registry.root),
                 "--bench", str(target)]) == 0
    assert "2 datapoint(s)" in capsys.readouterr().out
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert payload["pr"] == 5 and len(payload["datapoints"]) == 2
    with pytest.raises(SystemExit, match="no run registry"):
        main(["runs", "export", "--bench", str(target)])


# ----------------------------------------------------------------------
# end-to-end: CLI runs populate the registry (the acceptance test)
# ----------------------------------------------------------------------
def test_cli_run_records_a_run_and_events(tmp_path, capsys):
    registry_dir = tmp_path / "registry"
    events = tmp_path / "events.jsonl"
    assert main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
                 "--tasks", "ppt-01-blue-background",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--registry", str(registry_dir),
                 "--events", str(events)]) == 0
    assert "recorded run" in capsys.readouterr().out
    registry = RunRegistry(registry_dir)
    record = registry.latest()
    assert record is not None
    assert record.executor == "serial"
    assert record.trial_count == 1
    assert record.counters["trial_started"] == 1
    assert record.counters["trial_finished"] == 1
    assert record.counters["cache_miss"] == 1
    assert record.metrics["dmi-gpt5-medium"]["runs"] == 1
    assert record.config_key  # grid identity present
    from repro.bench.telemetry import read_jsonl_events

    names = [event["event"] for event in read_jsonl_events(events)]
    assert names.count("trial_finished") == 1
    assert "cache_miss" in names


def test_parallel_run_does_not_double_emit_trial_events(tmp_path, capsys):
    """Fork-started pool workers inherit the parent's default sink (and
    its open JSONL fd); _worker_init must reset it, or every trial is
    emitted twice — once by the worker, once by the parent."""
    events = tmp_path / "events.jsonl"
    assert main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
                 "--tasks", "ppt-01-blue-background", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--registry", str(tmp_path / "registry"),
                 "--events", str(events)]) == 0
    capsys.readouterr()
    from repro.bench.telemetry import read_jsonl_events

    names = [event["event"] for event in read_jsonl_events(events)]
    assert names.count("trial_started") == 1
    assert names.count("trial_finished") == 1
    record = RunRegistry(tmp_path / "registry").latest()
    assert record.executor == "parallel"
    assert record.counters["trial_finished"] == 1
    # The parent didn't run the trial itself, so the measured-time timers
    # carry no fake observations (only the pre-warm rip/build on the
    # parent side of the pool would be real, and those aren't per-trial).
    assert "trial_seconds" not in record.timers
    assert "phase_rip" not in record.timers
    assert "phase_build" not in record.timers
    assert record.timers["trial_wall_s"]["count"] == 1


def test_cli_broker_run_records_lease_and_cache_counters(tmp_path, capsys):
    """Acceptance: a sharded broker run with --registry produces a
    RunRecord whose trial count, cache hit/miss and lease-lifecycle
    counters all check out."""
    queue = str(tmp_path / "queue")
    registry_dir = tmp_path / "registry"
    assert main(["shard", "submit", "--broker", queue, "--shards", "2",
                 "--settings", "dmi-gpt5-medium", "gui-gpt5-medium",
                 "--tasks", "ppt-01-blue-background", "word-02-landscape",
                 "--trials", "1"]) == 0
    assert main(["shard", "work", "--broker", queue, "--worker-id", "w1",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--registry", str(registry_dir)]) == 0
    capsys.readouterr()
    registry = RunRegistry(registry_dir)
    work = registry.latest()
    assert work.executor == "dir-broker"
    assert work.trial_count == 4            # 2 settings x 2 tasks x 1 trial
    assert work.counters["lease_acquired"] == 2
    assert work.counters["shard_posted"] == 2
    assert work.counters["trial_finished"] == 4
    # Two apps, one worker, cold cache: one miss each, no hits.
    assert work.counters["cache_miss"] == 2
    assert work.counters.get("cache_hit", 0) == 0
    assert work.counters.get("lease_lost", 0) == 0
    assert work.counters.get("manifest_abandoned", 0) == 0
    assert work.context["manifests"] == 2
    # This worker drained the whole plan, so its record covers the full
    # grid and carries no subset marker.
    assert "subset" not in work.context

    assert main(["shard", "collect", "--broker", queue,
                 "--registry", str(registry_dir)]) == 0
    capsys.readouterr()
    # Both records can land within one second, so pick by role rather
    # than relying on run-id ordering.
    collect = next(record for record in registry.load_all()
                   if record.context.get("role") == "collect")
    assert collect.executor == "dir-broker"
    assert collect.context["role"] == "collect"
    assert collect.counters["shard_collected"] == 2
    assert collect.trial_count == 4
    # A collect record's wall clock measured only the coordinator's
    # poll/merge, so it must never read as comparable to a record that
    # actually executed the grid — the "collect" marker splits the keys.
    assert collect.context["subset"] == "collect"
    assert collect.config_key != work.config_key
    # `runs diff` between them still works, but flags the unlike work.
    assert main(["runs", "diff", work.run_id, collect.run_id,
                 "--registry", str(registry_dir),
                 "--fail-if", "trial_count>+0"]) == 0
    assert "different grids" in capsys.readouterr().out


def test_cli_shard_run_record_never_compares_as_a_full_run(tmp_path, capsys):
    """A one-shard `shard run` record is a marked grid subset: its
    config_key must differ from a full run of the same grid, so `runs
    diff` warns instead of silently comparing half the work."""
    shards_dir = tmp_path / "shards"
    registry_dir = tmp_path / "registry"
    grid = ["--settings", "dmi-gpt5-medium", "--tasks",
            "ppt-01-blue-background", "word-02-landscape", "--trials", "1"]
    assert main(["shard", "plan", "--shards", "2",
                 "--out", str(shards_dir)] + grid) == 0
    assert main(["shard", "run", str(shards_dir / "shard-000-of-002.json"),
                 "--results", str(tmp_path / "r0.json"),
                 "--cache-dir", str(tmp_path / "cache"),
                 "--registry", str(registry_dir)]) == 0
    assert main(["run", "--cache-dir", str(tmp_path / "cache"),
                 "--registry", str(registry_dir)] + grid) == 0
    capsys.readouterr()
    records = RunRegistry(registry_dir).load_all()
    shard_record = next(r for r in records if r.executor == "file-shard")
    full_record = next(r for r in records if r.executor == "serial")
    assert shard_record.context["subset"] == "shards-0-of-2"
    assert shard_record.trial_count == 1
    assert full_record.trial_count == 2
    assert shard_record.config_key != full_record.config_key
    text_code = main(["runs", "diff", shard_record.run_id,
                      full_record.run_id, "--registry", str(registry_dir)])
    assert text_code == 0
    assert "different grids" in capsys.readouterr().out
