"""Tests for control-identifier synthesis and parsing (paper §4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.uia.control_types import ControlType
from repro.uia.element import UIElement
from repro.uia.identifiers import (
    ControlIdentifier,
    UNNAMED,
    find_by_identifier,
    identifier_string,
    identifiers_equal,
    parse_identifier,
    synthesize_identifier,
)


def build_chain():
    root = UIElement(name="App", control_type=ControlType.WINDOW, automation_id="app.main")
    tab = root.add_child(UIElement(name="Home", control_type=ControlType.TAB_ITEM,
                                   automation_id="app.tab.home"))
    group = tab.add_child(UIElement(name="Font", control_type=ControlType.GROUP))
    button = group.add_child(UIElement(name="Bold", control_type=ControlType.BUTTON,
                                       automation_id="app.bold"))
    return root, tab, group, button


def test_synthesize_uses_automation_id_then_name_then_unnamed():
    root, tab, group, button = build_chain()
    assert synthesize_identifier(button).primary_id == "app.bold"
    assert synthesize_identifier(group).primary_id == "Font"
    unnamed = group.add_child(UIElement(control_type=ControlType.TEXT))
    assert synthesize_identifier(unnamed).primary_id == UNNAMED


def test_ancestor_path_is_root_first():
    root, tab, group, button = build_chain()
    identifier = synthesize_identifier(button)
    assert identifier.ancestor_path == ("app.main", "app.tab.home", "Font")


def test_round_trip_parse():
    _, _, _, button = build_chain()
    text = identifier_string(button)
    parsed = parse_identifier(text)
    assert parsed == synthesize_identifier(button)


def test_parse_rejects_malformed_strings():
    with pytest.raises(ValueError):
        parse_identifier("only-one-field")
    with pytest.raises(ValueError):
        parse_identifier("a|NotAType|b/c")


def test_escaping_of_separator_characters():
    root = UIElement(name="Weird|Name/With\\Chars", control_type=ControlType.BUTTON)
    identifier = synthesize_identifier(root)
    parsed = parse_identifier(str(identifier))
    assert parsed.primary_id == "Weird|Name/With\\Chars"


def test_identifiers_equal_ignores_formatting():
    _, _, _, button = build_chain()
    a = identifier_string(button)
    assert identifiers_equal(a, str(parse_identifier(a)))


def test_matches_element_checks_primary_id_and_type():
    _, _, _, button = build_chain()
    identifier = synthesize_identifier(button)
    assert identifier.matches_element(button)
    other = UIElement(name="Bold", control_type=ControlType.CHECK_BOX, automation_id="app.bold")
    assert not identifier.matches_element(other)


def test_find_by_identifier_locates_the_control():
    root, tab, group, button = build_chain()
    identifier = synthesize_identifier(button)
    assert find_by_identifier(root, identifier) is button


def test_find_by_identifier_accepts_path_suffix_match():
    root, tab, group, button = build_chain()
    shorter = ControlIdentifier(primary_id="app.bold", control_type=ControlType.BUTTON,
                                ancestor_path=("Font",))
    assert find_by_identifier(root, shorter) is button


def test_find_by_identifier_returns_none_when_missing():
    root, *_ = build_chain()
    missing = ControlIdentifier(primary_id="nope", control_type=ControlType.BUTTON)
    assert find_by_identifier(root, missing) is None


# ----------------------------------------------------------------------
# property-based round trip
# ----------------------------------------------------------------------
name_strategy = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    min_size=1, max_size=20,
)


@given(primary=name_strategy,
       ancestors=st.lists(name_strategy, max_size=4),
       control_type=st.sampled_from(list(ControlType)))
def test_identifier_string_round_trips(primary, ancestors, control_type):
    identifier = ControlIdentifier(primary_id=primary, control_type=control_type,
                                   ancestor_path=tuple(ancestors))
    assert parse_identifier(str(identifier)) == identifier
