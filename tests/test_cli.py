"""Tests for the command-line interface."""

import json

import pytest

from repro.bench.runner import DEFAULT_SEED
from repro.cli import build_parser, main


def test_parser_rejects_unknown_setting():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--settings", "nope"])


def test_tasks_command_lists_suite(capsys):
    assert main(["tasks"]) == 0
    output = capsys.readouterr().out
    assert "ppt-01-blue-background" in output
    assert output.count("\n") == 27


def test_tasks_command_filters_by_app(capsys):
    main(["tasks", "--app", "excel"])
    output = capsys.readouterr().out
    assert output.count("\n") == 9
    assert "word-" not in output


def test_model_command_prints_offline_statistics(capsys):
    assert main(["model", "powerpoint"]) == 0
    output = capsys.readouterr().out
    assert "UNG nodes" in output and "powerpoint" in output


def test_run_command_on_small_subset(capsys):
    code = main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
                 "--tasks", "ppt-02-scroll-to-end", "word-02-landscape"])
    assert code == 0
    output = capsys.readouterr().out
    assert "GUI+DMI" in output and "one-shot" in output


def test_report_command_on_small_subset(capsys):
    code = main(["report", "--trials", "1",
                 "--tasks", "ppt-01-blue-background", "excel-03-bold-header"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Table 3" in output
    assert "Figure 5a" in output
    assert "Figure 6" in output
    assert "single core LLM call" in output


def test_run_rejects_duplicate_task_ids(capsys):
    """PR 9 satellite: a repeated id would double-expand the grid (and trip
    the shard planner); the CLI names the offender instead."""
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
              "--tasks", "word-02-landscape", "ppt-01-blue-background",
              "word-02-landscape"])
    assert "duplicate task id 'word-02-landscape'" in str(excinfo.value)


def test_generate_prints_the_spec_identity(capsys):
    assert main(["generate", "seed=3,tasks=5"]) == 0
    output = capsys.readouterr().out
    assert "token:           s3-" in output
    assert "topology digest: " in output
    assert "tasks:           5" in output


def test_generate_ids_lists_one_task_id_per_line(capsys):
    token = "s3-t2-g1-c2-y3-m2-d2-cy1-x1-n4"
    assert main(["generate", token, "--ids"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines == [f"syn:{token}:{i:04d}" for i in range(4)]


def test_generate_json_round_trips(capsys):
    assert main(["generate", "seed=3,tasks=5", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["tasks"] == 5
    assert payload["app"].startswith("synthetic:s3-")
    assert len(payload["topology_digest"]) == 64


def test_generate_rejects_malformed_specs():
    with pytest.raises(SystemExit) as excinfo:
        main(["generate", "bogus=1"])
    assert "synthetic spec" in str(excinfo.value)


def test_run_accepts_a_synthetic_grid(capsys):
    token = "s3-t2-g1-c2-y3-m2-d2-cy1-x1-n4"
    code = main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
                 "--synthetic", token])
    assert code == 0
    assert "GUI+DMI" in capsys.readouterr().out


def test_synthetic_flag_rejects_overlap_with_explicit_tasks():
    token = "s3-t2-g1-c2-y3-m2-d2-cy1-x1-n4"
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
              "--tasks", f"syn:{token}:0001", "--synthetic", token])
    assert "both --tasks and the --synthetic suite" in str(excinfo.value)


def test_run_and_report_share_the_canonical_seed():
    parser = build_parser()
    assert parser.parse_args(["run"]).seed == DEFAULT_SEED
    assert parser.parse_args(["report"]).seed == DEFAULT_SEED


def test_run_command_with_jobs_cache_and_export(tmp_path, capsys):
    export = tmp_path / "out" / "results.json"
    args = ["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
            "--tasks", "ppt-02-scroll-to-end", "word-02-landscape",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
            "--export", str(export)]
    assert main(args) == 0
    assert "GUI+DMI" in capsys.readouterr().out
    payload = json.loads(export.read_text())
    assert payload["config"]["jobs"] == 2
    results = payload["settings"]["dmi-gpt5-medium"]["results"]
    assert len(results) == 2
    assert {r["task_id"] for r in results} == {"ppt-02-scroll-to-end",
                                               "word-02-landscape"}
    assert "SR" in payload["settings"]["dmi-gpt5-medium"]["summary"]
    # Warm-cache re-run produces the identical export.
    assert main(args) == 0
    capsys.readouterr()
    assert json.loads(export.read_text()) == payload


def test_model_command_save_then_load_round_trip(tmp_path, capsys):
    model_path = tmp_path / "models" / "ppt.json"
    assert main(["model", "powerpoint", "--save", str(model_path)]) == 0
    built = capsys.readouterr().out
    assert model_path.exists()
    assert main(["model", "powerpoint", "--load", str(model_path)]) == 0
    loaded = capsys.readouterr().out
    assert loaded == built


def test_model_load_rejects_missing_file_and_wrong_app(tmp_path, capsys):
    with pytest.raises(SystemExit, match="cannot load"):
        main(["model", "word", "--load", str(tmp_path / "nope.json")])
    model_path = tmp_path / "ppt.json"
    main(["model", "powerpoint", "--save", str(model_path)])
    capsys.readouterr()
    with pytest.raises(SystemExit, match="not of 'word'"):
        main(["model", "word", "--load", str(model_path)])
    truncated = tmp_path / "truncated.json"
    truncated.write_text('{"format_version": 1}')
    with pytest.raises(SystemExit, match="invalid model file"):
        main(["model", "word", "--load", str(truncated)])


def test_model_save_reports_unwritable_path(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("x")  # a file where --save needs a directory
    with pytest.raises(SystemExit, match="cannot save"):
        main(["model", "word", "--save", str(blocker / "model.json")])
    capsys.readouterr()


def test_run_rejects_invalid_jobs_and_cache_dir(tmp_path):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--jobs", "0"])
    not_a_dir = tmp_path / "file"
    not_a_dir.write_text("x")
    with pytest.raises(SystemExit, match="not a directory"):
        main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
              "--tasks", "word-02-landscape", "--cache-dir", str(not_a_dir)])


def test_run_and_report_reject_non_positive_trials(capsys):
    """Regression: --trials 0 used to print an all-zero Table 3."""
    for command in ("run", "report"):
        for trials in ("0", "-1"):
            with pytest.raises(SystemExit) as exc:
                main([command, "--trials", trials,
                      "--tasks", "word-02-landscape"])
            assert exc.value.code != 0
    captured = capsys.readouterr()
    assert "must be >= 1" in captured.err
    assert "Table 3" not in captured.out


def test_run_rejects_explicit_empty_task_list():
    """Regression: `--tasks` with zero ids fell back to the full suite."""
    with pytest.raises(SystemExit, match="at least one task id"):
        main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
              "--tasks"])


def test_run_rejects_unknown_task_id():
    with pytest.raises(SystemExit, match="unknown task id 'no-such-task'"):
        main(["run", "--trials", "1", "--tasks", "no-such-task"])


def test_run_progress_streams_one_line_per_trial(capsys):
    assert main(["run", "--settings", "dmi-gpt5-medium", "--trials", "2",
                 "--tasks", "word-02-landscape", "--progress"]) == 0
    captured = capsys.readouterr()
    lines = [line for line in captured.err.splitlines() if line.startswith("[")]
    assert lines == ["[1/2] word-02-landscape dmi-gpt5-medium trial 0",
                     "[2/2] word-02-landscape dmi-gpt5-medium trial 1"]
    assert "[1/2]" not in captured.out  # progress stays off stdout


# ----------------------------------------------------------------------
# shard plan / run / merge
# ----------------------------------------------------------------------
SHARD_GRID = ["--settings", "dmi-gpt5-medium", "gui-gpt5-medium",
              "--tasks", "ppt-01-blue-background", "word-02-landscape",
              "--trials", "1"]


def _sharded_export(tmp_path, capsys, shards=3):
    out_dir = tmp_path / "shards"
    assert main(["shard", "plan", "--shards", str(shards),
                 "--out", str(out_dir)] + SHARD_GRID) == 0
    manifests = sorted(out_dir.glob("shard-*.json"))
    assert len(manifests) == shards
    results = []
    for index, manifest in enumerate(manifests):
        path = tmp_path / f"results-{index}.json"
        assert main(["shard", "run", str(manifest),
                     "--results", str(path)]) == 0
        results.append(str(path))
    merged = tmp_path / "merged.json"
    assert main(["shard", "merge", *results, "--export", str(merged)]) == 0
    capsys.readouterr()
    return json.loads(merged.read_text())


def test_shard_plan_run_merge_matches_single_machine_run(tmp_path, capsys):
    merged = _sharded_export(tmp_path, capsys)
    single = tmp_path / "single.json"
    assert main(["run", *SHARD_GRID, "--export", str(single)]) == 0
    capsys.readouterr()
    payload = json.loads(single.read_text())
    # Identical per-trial results and aggregate summaries, bit for bit.
    assert merged["settings"] == payload["settings"]
    assert merged["config"]["shards"] == 3
    assert merged["config"]["seed"] == payload["config"]["seed"]


def test_shard_run_progress_counts_manifest_specs(tmp_path, capsys):
    out_dir = tmp_path / "shards"
    main(["shard", "plan", "--shards", "1", "--out", str(out_dir)] + SHARD_GRID)
    capsys.readouterr()
    manifest = next(out_dir.glob("shard-*.json"))
    assert main(["shard", "run", str(manifest), "--progress",
                 "--results", str(tmp_path / "r.json")]) == 0
    captured = capsys.readouterr()
    lines = [line for line in captured.err.splitlines() if line.startswith("[")]
    assert len(lines) == 4  # 2 settings x 2 tasks x 1 trial
    assert lines[-1].startswith("[4/4] ")


def test_shard_merge_rejects_foreign_and_missing_shards(tmp_path, capsys):
    out_dir = tmp_path / "shards"
    main(["shard", "plan", "--shards", "2", "--out", str(out_dir)] + SHARD_GRID)
    alien_dir = tmp_path / "alien"
    main(["shard", "plan", "--shards", "2", "--out", str(alien_dir),
          "--seed", "99"] + SHARD_GRID)
    capsys.readouterr()
    paths = {}
    for name, directory in (("ours-0", out_dir), ("alien-1", alien_dir)):
        index = name.split("-")[1]
        manifest = directory / f"shard-00{index}-of-002.json"
        paths[name] = tmp_path / f"{name}.json"
        assert main(["shard", "run", str(manifest),
                     "--results", str(paths[name])]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit, match="seed"):
        main(["shard", "merge", str(paths["ours-0"]), str(paths["alien-1"])])
    with pytest.raises(SystemExit, match="missing results"):
        main(["shard", "merge", str(paths["ours-0"])])
    with pytest.raises(SystemExit, match="cannot read"):
        main(["shard", "merge", str(tmp_path / "nope.json")])


def test_shard_plan_rejects_oversharding(tmp_path):
    with pytest.raises(SystemExit, match="fewer shards"):
        main(["shard", "plan", "--shards", "99", "--out", str(tmp_path / "s")]
             + SHARD_GRID)


# ----------------------------------------------------------------------
# shard submit / work / collect (the broker queue)
# ----------------------------------------------------------------------
#: Like SHARD_GRID but 2 trials, so the round-robin deal gives every shard
#: both apps (shard 1 then runs entirely from shard 0's warm cache).
BROKER_GRID = SHARD_GRID[:-1] + ["2"]


def test_shard_submit_work_collect_matches_single_machine_run(tmp_path, capsys):
    broker = tmp_path / "queue"
    cache = tmp_path / "cache"
    assert main(["shard", "submit", "--broker", str(broker), "--shards", "2"]
                + BROKER_GRID) == 0
    assert "submitted 2 shard manifest(s)" in capsys.readouterr().out
    # Two sequential workers sharing the cache dir, like two machines.
    assert main(["shard", "work", "--broker", str(broker), "--worker-id", "w1",
                 "--cache-dir", str(cache), "--max-manifests", "1"]) == 0
    first = capsys.readouterr().out
    assert "w1: 1 manifest(s) executed" in first
    assert main(["shard", "work", "--broker", str(broker), "--worker-id", "w2",
                 "--cache-dir", str(cache)]) == 0
    second = capsys.readouterr().out
    assert "w2: 1 manifest(s) executed" in second
    # Satellite guarantee: the second worker's cache never misses.
    assert "0 miss(es)" in second and "0 miss(es)" not in first
    merged = tmp_path / "merged.json"
    assert main(["shard", "collect", "--broker", str(broker),
                 "--export", str(merged)]) == 0
    capsys.readouterr()
    single = tmp_path / "single.json"
    assert main(["run", *BROKER_GRID, "--export", str(single)]) == 0
    capsys.readouterr()
    merged_payload = json.loads(merged.read_text())
    assert merged_payload["settings"] == json.loads(single.read_text())["settings"]
    assert merged_payload["config"]["broker"] == str(broker)


def test_shard_collect_reports_incomplete_queue(tmp_path, capsys):
    broker = tmp_path / "queue"
    main(["shard", "submit", "--broker", str(broker), "--shards", "2"]
         + SHARD_GRID)
    main(["shard", "work", "--broker", str(broker), "--max-manifests", "1"])
    capsys.readouterr()
    with pytest.raises(SystemExit, match="not complete") as exc:
        main(["shard", "collect", "--broker", str(broker)])
    assert "1/2 done" in str(exc.value)


def test_shard_work_streams_trial_progress(tmp_path, capsys):
    broker = tmp_path / "queue"
    main(["shard", "submit", "--broker", str(broker), "--shards", "1"]
         + SHARD_GRID)
    capsys.readouterr()
    assert main(["shard", "work", "--broker", str(broker), "--progress"]) == 0
    captured = capsys.readouterr()
    lines = [line for line in captured.err.splitlines() if line.startswith("[")]
    assert len(lines) == 4  # 2 settings x 2 tasks x 1 trial
    assert "posted shard 1/1" in captured.out


def test_shard_submit_refuses_a_second_plan(tmp_path, capsys):
    broker = tmp_path / "queue"
    assert main(["shard", "submit", "--broker", str(broker), "--shards", "1"]
                + SHARD_GRID) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit, match="already holds a plan"):
        main(["shard", "submit", "--broker", str(broker), "--shards", "1"]
             + SHARD_GRID)


def test_shard_collect_on_unsubmitted_broker_errors_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="no plan has been submitted"):
        main(["shard", "collect", "--broker", str(tmp_path / "empty")])


def test_shard_work_rejects_bad_flags(tmp_path):
    for poll in ("0", "-1", "nan", "inf"):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "work", "--broker", "q",
                                       "--poll", poll])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["shard", "work", "--broker", "q",
                                   "--max-manifests", "0"])


def test_shard_merge_report_prints_figures(tmp_path, capsys):
    out_dir = tmp_path / "shards"
    main(["shard", "plan", "--shards", "2", "--out", str(out_dir)] + SHARD_GRID)
    results = []
    for index, manifest in enumerate(sorted(out_dir.glob("shard-*.json"))):
        path = tmp_path / f"r{index}.json"
        main(["shard", "run", str(manifest), "--results", str(path)])
        results.append(str(path))
    capsys.readouterr()
    assert main(["shard", "merge", *results, "--report"]) == 0
    output = capsys.readouterr().out
    assert "Table 3" in output
    assert "Figure 5a" in output
    assert "Figure 6" in output
    assert "single core LLM call" in output


# ----------------------------------------------------------------------
# shard submit / work / collect over the object-store broker
# ----------------------------------------------------------------------
def test_shard_submit_work_collect_via_object_store_matches_single_run(
        tmp_path, capsys):
    store = tmp_path / "objstore"
    cache = tmp_path / "cache"
    assert main(["shard", "submit", "--store", str(store), "--shards", "2"]
                + BROKER_GRID) == 0
    submitted = capsys.readouterr().out
    assert "submitted 2 shard manifest(s)" in submitted
    assert "--store" in submitted  # the hint names the chosen backend
    # Two sequential workers with explicit lease/heartbeat tuning.
    assert main(["shard", "work", "--store", str(store), "--worker-id", "w1",
                 "--lease-ttl", "120", "--heartbeat", "5",
                 "--cache-dir", str(cache), "--max-manifests", "1"]) == 0
    assert "w1: 1 manifest(s) executed" in capsys.readouterr().out
    assert main(["shard", "work", "--store", str(store), "--worker-id", "w2",
                 "--heartbeat", "0", "--cache-dir", str(cache)]) == 0
    assert "w2: 1 manifest(s) executed" in capsys.readouterr().out
    merged = tmp_path / "merged.json"
    assert main(["shard", "collect", "--store", str(store),
                 "--export", str(merged)]) == 0
    capsys.readouterr()
    single = tmp_path / "single.json"
    assert main(["run", *BROKER_GRID, "--export", str(single)]) == 0
    capsys.readouterr()
    merged_payload = json.loads(merged.read_text())
    assert merged_payload["settings"] == json.loads(single.read_text())["settings"]
    assert merged_payload["config"]["broker"] == str(store)


def test_shard_queue_commands_require_exactly_one_backend(tmp_path):
    for command in (["shard", "submit", "--shards", "1"],
                    ["shard", "work"], ["shard", "collect"]):
        with pytest.raises(SystemExit):  # neither --broker nor --store
            build_parser().parse_args(command)
        with pytest.raises(SystemExit):  # both at once
            build_parser().parse_args(command + ["--broker", "a",
                                                 "--store", "b"])


def test_shard_queue_commands_reject_nonpositive_lease_ttl():
    for value in ("0", "-5", "nan", "inf"):
        for command in (["shard", "submit", "--shards", "1"],
                        ["shard", "work"], ["shard", "collect"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(command + ["--broker", "q",
                                                     "--lease-ttl", value])


def test_shard_work_rejects_heartbeat_at_or_above_lease_ttl(tmp_path):
    with pytest.raises(SystemExit, match="shorter than") as excinfo:
        main(["shard", "work", "--broker", str(tmp_path / "q"),
              "--lease-ttl", "30", "--heartbeat", "30"])
    assert "--lease-ttl" in str(excinfo.value)  # names both flags
    with pytest.raises(SystemExit, match="shorter than"):
        main(["shard", "work", "--broker", str(tmp_path / "q"),
              "--heartbeat", "1000"])  # >= the default 900s ttl
    with pytest.raises(SystemExit):  # negative: rejected by argparse
        build_parser().parse_args(["shard", "work", "--broker", "q",
                                   "--heartbeat", "-1"])


def test_shard_work_progress_prints_heartbeat_renewals(tmp_path, capsys):
    store = tmp_path / "objstore"
    main(["shard", "submit", "--store", str(store), "--shards", "1"]
         + BROKER_GRID)
    capsys.readouterr()
    assert main(["shard", "work", "--store", str(store), "--worker-id", "hb",
                 "--lease-ttl", "60", "--heartbeat", "0.02",
                 "--progress"]) == 0
    captured = capsys.readouterr()
    assert "hb: renewed lease on shard 1/1" in captured.err
    assert "posted shard 1/1" in captured.out


# ----------------------------------------------------------------------
# named plans, per-plan status, and the fleet view
# ----------------------------------------------------------------------
def test_shard_named_plans_submit_work_status_collect(tmp_path, capsys):
    """Two named plans on one broker: one worker drains both, `shard
    status` shows a per-plan table, and each collect exports exactly the
    single-machine run."""
    broker = tmp_path / "queue"
    assert main(["shard", "submit", "--broker", str(broker), "--shards", "1",
                 "--plan", "nightly", "--priority", "1"] + SHARD_GRID) == 0
    submitted = capsys.readouterr().out
    assert "as plan 'nightly'" in submitted
    assert "--plan nightly" in submitted  # the collect hint names the plan
    assert main(["shard", "submit", "--broker", str(broker), "--shards", "2",
                 "--plan", "smoke"] + SHARD_GRID) == 0
    capsys.readouterr()
    assert main(["shard", "work", "--broker", str(broker),
                 "--worker-id", "w1"]) == 0
    worked = capsys.readouterr().out
    assert "w1: 3 manifest(s) executed" in worked
    # Multi-plan drains get a per-plan breakdown under the summary line.
    assert "plan 'nightly': 1 manifest(s)" in worked
    assert "plan 'smoke': 2 manifest(s)" in worked
    assert main(["shard", "status", "--broker", str(broker)]) == 0
    table = capsys.readouterr().out
    assert "nightly" in table and "smoke" in table
    assert "(all plans)" in table  # the aggregate row
    exports = {}
    for name in ("nightly", "smoke"):
        target = tmp_path / f"{name}.json"
        assert main(["shard", "collect", "--broker", str(broker),
                     "--plan", name, "--export", str(target)]) == 0
        capsys.readouterr()
        exports[name] = json.loads(target.read_text())
        assert exports[name]["config"]["plan"] == name
    single = tmp_path / "single.json"
    assert main(["run", *SHARD_GRID, "--export", str(single)]) == 0
    capsys.readouterr()
    reference = json.loads(single.read_text())["settings"]
    assert exports["nightly"]["settings"] == reference
    assert exports["smoke"]["settings"] == reference


def test_shard_collect_names_the_incomplete_plan(tmp_path, capsys):
    broker = tmp_path / "queue"
    main(["shard", "submit", "--broker", str(broker), "--shards", "2",
          "--plan", "nightly"] + SHARD_GRID)
    capsys.readouterr()
    with pytest.raises(SystemExit, match="plan 'nightly'.*not complete"):
        main(["shard", "collect", "--broker", str(broker),
              "--plan", "nightly"])
    # An unknown plan name still gets the canonical unsubmitted error.
    with pytest.raises(SystemExit, match="no plan has been submitted"):
        main(["shard", "collect", "--broker", str(broker),
              "--plan", "never-was"])


def test_shard_rejects_invalid_plan_names():
    for bad in ("", ".", "..", "a/b", "a..b", "plan name"):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "submit", "--broker", "q",
                                       "--shards", "1", "--plan", bad])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "collect", "--broker", "q",
                                       "--plan", bad])


def test_shard_work_daemon_flag_validation(tmp_path):
    with pytest.raises(SystemExit, match="only applies to --daemon"):
        main(["shard", "work", "--broker", str(tmp_path / "q"),
              "--max-idle-s", "5"])
    for value in ("0", "-1", "inf"):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "work", "--broker", "q",
                                       "--daemon", "--max-idle-s", value])


def test_fleet_status_reads_live_metrics_snapshot(tmp_path, capsys):
    """A worker run with --metrics leaves a snapshot the fleet view folds
    into its report: zeroed queue gauges, the drained marker, and idle
    accounting."""
    broker = tmp_path / "queue"
    metrics = tmp_path / "fleet.json"
    main(["shard", "submit", "--broker", str(broker), "--shards", "1",
          "--plan", "nightly"] + SHARD_GRID)
    assert main(["shard", "work", "--broker", str(broker),
                 "--metrics", str(metrics)]) == 0
    capsys.readouterr()
    assert main(["fleet", "status", "--broker", str(broker),
                 "--metrics", str(metrics), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["plans"]) == {"nightly"}
    assert payload["plans"]["nightly"]["queued"] == 0
    assert payload["aggregate"]["complete"] is True
    gauges = payload["worker_metrics"]["plans"]["nightly"]
    assert gauges["queued"] == 0 and gauges["drained"] is True
    assert gauges["done"] == 1
    assert main(["fleet", "status", "--broker", str(broker),
                 "--metrics", str(metrics)]) == 0
    rendered = capsys.readouterr().out
    assert "drained plans: nightly" in rendered
    assert "worker idle:" in rendered
    with pytest.raises(SystemExit, match="not valid JSON"):
        metrics.write_text("{torn", encoding="utf-8")
        main(["fleet", "status", "--broker", str(broker),
              "--metrics", str(metrics)])


# ----------------------------------------------------------------------
# chaos conformance: --fault-schedule on the queue commands
# ----------------------------------------------------------------------
def _hostile_schedule_file(tmp_path, ops):
    """A seeded storm for CLI runs: transient errors only (semantics-
    preserving), burst 1 so the default 8-attempt retry budget puts the
    give-up probability per call around 1e-8."""
    from repro.bench.faults import FaultSchedule, FaultSpec

    spec = FaultSpec(error_rate=0.1)
    schedule_path = tmp_path / "storm.json"
    FaultSchedule(seed=8, ops={op: spec for op in ops}).save(schedule_path)
    return schedule_path


def test_shard_chaos_store_round_trip_matches_single_run(tmp_path, capsys):
    """PR 8 satellite: the full submit/work/collect round trip over the
    object store with a seeded hostile fault schedule exports exactly the
    single-machine run, and the worker's registry record proves the storm
    reached the retry layer (``store_retry`` counter via ``runs show``)."""
    from repro.bench.faults import STORE_OPS
    from repro.bench.registry import RunRegistry

    store = tmp_path / "objstore"
    registry_dir = tmp_path / "registry"
    storm = _hostile_schedule_file(tmp_path, STORE_OPS)
    chaos = ["--fault-schedule", str(storm)]
    assert main(["shard", "submit", "--store", str(store), "--shards", "2"]
                + BROKER_GRID + chaos) == 0
    capsys.readouterr()
    assert main(["shard", "work", "--store", str(store), "--worker-id", "w1",
                 "--heartbeat", "0", "--max-manifests", "1",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--registry", str(registry_dir)] + chaos) == 0
    assert "w1: 1 manifest(s) executed" in capsys.readouterr().out
    assert main(["shard", "work", "--store", str(store), "--worker-id", "w2",
                 "--heartbeat", "0", "--cache-dir", str(tmp_path / "cache"),
                 "--registry", str(registry_dir)] + chaos) == 0
    assert "w2: 1 manifest(s) executed" in capsys.readouterr().out
    merged = tmp_path / "merged.json"
    assert main(["shard", "collect", "--store", str(store),
                 "--export", str(merged)] + chaos) == 0
    single = tmp_path / "single.json"
    assert main(["run", *BROKER_GRID, "--export", str(single)]) == 0
    capsys.readouterr()
    merged_payload = json.loads(merged.read_text())
    assert merged_payload["settings"] == json.loads(single.read_text())["settings"]
    # The storm was real and the retries are on the record: `runs show`
    # surfaces a positive store_retry counter for the first worker.
    run_id = RunRegistry(registry_dir).latest().run_id
    assert main(["runs", "show", run_id, "--registry",
                 str(registry_dir)]) == 0
    shown = json.loads(capsys.readouterr().out)
    assert shown["counters"]["store_retry"] > 0
    assert shown["counters"]["shard_posted"] == 1


def test_shard_chaos_dir_broker_round_trip_matches_single_run(
        tmp_path, capsys):
    """The same storm hits the directory broker's queue verbs (through the
    retrying shim) and the merged export still matches the plain run."""
    from repro.bench.faults import BROKER_OPS

    broker = tmp_path / "queue"
    storm = _hostile_schedule_file(tmp_path, BROKER_OPS)
    chaos = ["--fault-schedule", str(storm)]
    assert main(["shard", "submit", "--broker", str(broker), "--shards", "2"]
                + BROKER_GRID + chaos) == 0
    capsys.readouterr()
    assert main(["shard", "work", "--broker", str(broker), "--worker-id", "w1",
                 "--heartbeat", "0",
                 "--cache-dir", str(tmp_path / "cache")] + chaos) == 0
    assert "w1: 2 manifest(s) executed" in capsys.readouterr().out
    merged = tmp_path / "merged.json"
    assert main(["shard", "collect", "--broker", str(broker),
                 "--export", str(merged)] + chaos) == 0
    single = tmp_path / "single.json"
    assert main(["run", *BROKER_GRID, "--export", str(single)]) == 0
    capsys.readouterr()
    merged_payload = json.loads(merged.read_text())
    assert merged_payload["settings"] == json.loads(single.read_text())["settings"]


def test_shard_fault_schedule_rejects_unreadable_files(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(SystemExit, match="cannot read"):
        main(["shard", "submit", "--store", str(tmp_path / "s"),
              "--shards", "1", "--fault-schedule", str(missing)] + BROKER_GRID)
    torn = tmp_path / "torn.json"
    torn.write_text("{not json", encoding="utf-8")
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(["shard", "work", "--store", str(tmp_path / "s"),
              "--fault-schedule", str(torn)])
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"kind": "something-else"}), encoding="utf-8")
    with pytest.raises(SystemExit, match="field 'kind'"):
        main(["shard", "collect", "--store", str(tmp_path / "s"),
              "--fault-schedule", str(wrong)])
