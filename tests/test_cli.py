"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_setting():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--settings", "nope"])


def test_tasks_command_lists_suite(capsys):
    assert main(["tasks"]) == 0
    output = capsys.readouterr().out
    assert "ppt-01-blue-background" in output
    assert output.count("\n") == 27


def test_tasks_command_filters_by_app(capsys):
    main(["tasks", "--app", "excel"])
    output = capsys.readouterr().out
    assert output.count("\n") == 9
    assert "word-" not in output


def test_model_command_prints_offline_statistics(capsys):
    assert main(["model", "powerpoint"]) == 0
    output = capsys.readouterr().out
    assert "UNG nodes" in output and "powerpoint" in output


def test_run_command_on_small_subset(capsys):
    code = main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
                 "--tasks", "ppt-02-scroll-to-end", "word-02-landscape"])
    assert code == 0
    output = capsys.readouterr().out
    assert "GUI+DMI" in output and "one-shot" in output


def test_report_command_on_small_subset(capsys):
    code = main(["report", "--trials", "1",
                 "--tasks", "ppt-01-blue-background", "excel-03-bold-header"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Table 3" in output
    assert "Figure 5a" in output
    assert "Figure 6" in output
    assert "single core LLM call" in output
