"""Tests for the command-line interface."""

import json

import pytest

from repro.bench.runner import DEFAULT_SEED
from repro.cli import build_parser, main


def test_parser_rejects_unknown_setting():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--settings", "nope"])


def test_tasks_command_lists_suite(capsys):
    assert main(["tasks"]) == 0
    output = capsys.readouterr().out
    assert "ppt-01-blue-background" in output
    assert output.count("\n") == 27


def test_tasks_command_filters_by_app(capsys):
    main(["tasks", "--app", "excel"])
    output = capsys.readouterr().out
    assert output.count("\n") == 9
    assert "word-" not in output


def test_model_command_prints_offline_statistics(capsys):
    assert main(["model", "powerpoint"]) == 0
    output = capsys.readouterr().out
    assert "UNG nodes" in output and "powerpoint" in output


def test_run_command_on_small_subset(capsys):
    code = main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
                 "--tasks", "ppt-02-scroll-to-end", "word-02-landscape"])
    assert code == 0
    output = capsys.readouterr().out
    assert "GUI+DMI" in output and "one-shot" in output


def test_report_command_on_small_subset(capsys):
    code = main(["report", "--trials", "1",
                 "--tasks", "ppt-01-blue-background", "excel-03-bold-header"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Table 3" in output
    assert "Figure 5a" in output
    assert "Figure 6" in output
    assert "single core LLM call" in output


def test_run_and_report_share_the_canonical_seed():
    parser = build_parser()
    assert parser.parse_args(["run"]).seed == DEFAULT_SEED
    assert parser.parse_args(["report"]).seed == DEFAULT_SEED


def test_run_command_with_jobs_cache_and_export(tmp_path, capsys):
    export = tmp_path / "out" / "results.json"
    args = ["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
            "--tasks", "ppt-02-scroll-to-end", "word-02-landscape",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
            "--export", str(export)]
    assert main(args) == 0
    assert "GUI+DMI" in capsys.readouterr().out
    payload = json.loads(export.read_text())
    assert payload["config"]["jobs"] == 2
    results = payload["settings"]["dmi-gpt5-medium"]["results"]
    assert len(results) == 2
    assert {r["task_id"] for r in results} == {"ppt-02-scroll-to-end",
                                               "word-02-landscape"}
    assert "SR" in payload["settings"]["dmi-gpt5-medium"]["summary"]
    # Warm-cache re-run produces the identical export.
    assert main(args) == 0
    capsys.readouterr()
    assert json.loads(export.read_text()) == payload


def test_model_command_save_then_load_round_trip(tmp_path, capsys):
    model_path = tmp_path / "models" / "ppt.json"
    assert main(["model", "powerpoint", "--save", str(model_path)]) == 0
    built = capsys.readouterr().out
    assert model_path.exists()
    assert main(["model", "powerpoint", "--load", str(model_path)]) == 0
    loaded = capsys.readouterr().out
    assert loaded == built


def test_model_load_rejects_missing_file_and_wrong_app(tmp_path, capsys):
    with pytest.raises(SystemExit, match="cannot load"):
        main(["model", "word", "--load", str(tmp_path / "nope.json")])
    model_path = tmp_path / "ppt.json"
    main(["model", "powerpoint", "--save", str(model_path)])
    capsys.readouterr()
    with pytest.raises(SystemExit, match="not of 'word'"):
        main(["model", "word", "--load", str(model_path)])
    truncated = tmp_path / "truncated.json"
    truncated.write_text('{"format_version": 1}')
    with pytest.raises(SystemExit, match="invalid model file"):
        main(["model", "word", "--load", str(truncated)])


def test_model_save_reports_unwritable_path(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("x")  # a file where --save needs a directory
    with pytest.raises(SystemExit, match="cannot save"):
        main(["model", "word", "--save", str(blocker / "model.json")])
    capsys.readouterr()


def test_run_rejects_invalid_jobs_and_cache_dir(tmp_path):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--jobs", "0"])
    not_a_dir = tmp_path / "file"
    not_a_dir.write_text("x")
    with pytest.raises(SystemExit, match="not a directory"):
        main(["run", "--settings", "dmi-gpt5-medium", "--trials", "1",
              "--tasks", "word-02-landscape", "--cache-dir", str(not_a_dir)])
