"""Tests for DMI's fuzzy control matcher and structured error feedback."""

from repro.dmi.errors import (
    ControlDisabledFeedback,
    ControlNotFoundFeedback,
    ExecutionStatus,
    FilteredFeedback,
    PatternUnsupportedFeedback,
    ok_feedback,
)
from repro.dmi.matching import FuzzyControlMatcher
from repro.uia.control_types import ControlType
from repro.uia.element import UIElement
from repro.uia.identifiers import ControlIdentifier, synthesize_identifier


def build_window():
    window = UIElement(name="Main", control_type=ControlType.WINDOW, automation_id="app.main")
    home = window.add_child(UIElement(name="Home", control_type=ControlType.TAB_ITEM,
                                      automation_id="App.Tab.Home"))
    bold = home.add_child(UIElement(name="Bold", control_type=ControlType.BUTTON,
                                    automation_id="App.Home.Bold"))
    italic = home.add_child(UIElement(name="Italic", control_type=ControlType.BUTTON,
                                      automation_id="App.Home.Italic"))
    hidden = home.add_child(UIElement(name="Hidden Button", control_type=ControlType.BUTTON,
                                      automation_id="App.Home.Hidden", visible=False))
    return window, home, bold, italic, hidden


# ----------------------------------------------------------------------
# exact and fuzzy matching
# ----------------------------------------------------------------------
def test_exact_match_by_identifier():
    window, home, bold, *_ = build_window()
    matcher = FuzzyControlMatcher()
    result = matcher.find([window], synthesize_identifier(bold))
    assert result.found and result.exact and result.element is bold


def test_offscreen_controls_are_skipped_by_default():
    window, *_rest, hidden = build_window()
    matcher = FuzzyControlMatcher()
    identifier = synthesize_identifier(hidden)
    assert not matcher.find([window], identifier).found
    assert matcher.find([window], identifier, require_on_screen=False).found


def test_fuzzy_match_survives_renaming():
    window, home, bold, *_ = build_window()
    identifier = synthesize_identifier(bold)
    bold.name = "Bold (Ctrl+B)"
    bold.automation_id = "App.Home.BoldToggle"
    result = FuzzyControlMatcher().find([window], identifier)
    assert result.found and not result.exact and result.element is bold


def test_fuzzy_match_does_not_cross_dotted_id_prefixes():
    """Shared 'App.' prefixes must not make unrelated controls look similar."""
    window, home, bold, italic, _ = build_window()
    wanted = ControlIdentifier(primary_id="App.Design.FormatBackground",
                               control_type=ControlType.BUTTON,
                               ancestor_path=("app.main",))
    result = FuzzyControlMatcher().find([window], wanted)
    assert not result.found


def test_allow_fuzzy_false_requires_exact():
    window, home, bold, *_ = build_window()
    identifier = synthesize_identifier(bold)
    bold.automation_id = "App.Home.BoldRenamed"
    assert not FuzzyControlMatcher().find([window], identifier, allow_fuzzy=False).found


def test_find_by_label_exact_and_fuzzy():
    window, *_ = build_window()
    matcher = FuzzyControlMatcher()
    assert matcher.find_by_label([window], "Italic").element.name == "Italic"
    assert matcher.find_by_label([window], "italic button").element.name == "Italic"
    assert matcher.find_by_label([window], "zzzz").element is None


def test_nearest_names_for_feedback():
    window, *_ = build_window()
    identifier = ControlIdentifier(primary_id="Bald", control_type=ControlType.BUTTON)
    names = FuzzyControlMatcher().nearest_names([window], identifier, limit=2)
    assert "Bold" in names and len(names) <= 2


# ----------------------------------------------------------------------
# structured feedback
# ----------------------------------------------------------------------
def test_feedback_constructors_and_prompt_rendering():
    ok = ok_feedback("access", target="Blue", extra=1)
    assert ok.ok and ok.detail == {"extra": 1}
    not_found = ControlNotFoundFeedback("access", "Blue", window="Main", candidates=["Blu"])
    assert not_found.status == ExecutionStatus.ERROR
    assert "Blue" in not_found.message and not_found.suggestions
    disabled = ControlDisabledFeedback("access", "Apply", state={"window": "Dialog"})
    assert "disabled" in disabled.message
    unsupported = PatternUnsupportedFeedback("set_scrollbar_pos", "Canvas", "Scroll")
    assert "Scroll" in unsupported.message
    filtered = FilteredFeedback("access", "Design")
    assert filtered.status == ExecutionStatus.FILTERED
    text = not_found.to_prompt_text()
    assert "[error]" in text and "suggestion:" in text
