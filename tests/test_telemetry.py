"""Unit tests for the telemetry subsystem (events, sinks, cache events).

Covers the PR 5 tentpole pieces that don't need a full benchmark run: sink
semantics (NullSink truthiness, default-sink scoping, TeeSink fan-out),
AggregatingSink counters/timers under threads, JsonlSink crash-tolerant
round trips, the trial phase breakdown, and the ArtifactCache hit / miss /
LRU-eviction instrumentation (the bounded-cache satellite).
"""

import json
import threading

import pytest

from repro.agent.session import InterfaceSetting, LLMCallRecord, SessionResult
from repro.bench import telemetry
from repro.bench.telemetry import (
    NULL_SINK,
    AggregatingSink,
    CacheHit,
    CacheMiss,
    JsonlSink,
    MetricsSnapshotSink,
    NullSink,
    TeeSink,
    TelemetryError,
    PlanDrained,
    PlanSubmitted,
    QueueDepth,
    TimerStats,
    TrialFinished,
    TrialStarted,
    WorkerIdle,
    phases_from_result,
    read_jsonl_events,
    resolve,
    set_default_sink,
    use_sink,
)
from repro.dmi.cache import ArtifactCache


# ----------------------------------------------------------------------
# sink plumbing
# ----------------------------------------------------------------------
def test_null_sink_is_falsy_and_discards():
    sink = NullSink()
    assert not sink
    sink.emit(CacheHit(app="word"))  # no-op, no error


def test_default_sink_is_null_and_use_sink_scopes_and_restores():
    assert telemetry.default_sink() is NULL_SINK
    outer = AggregatingSink()
    inner = AggregatingSink()
    with use_sink(outer):
        assert telemetry.default_sink() is outer
        assert resolve(None) is outer
        with use_sink(inner):
            assert resolve(None) is inner
        assert resolve(None) is outer
    assert telemetry.default_sink() is NULL_SINK
    # use_sink(None) explicitly turns telemetry off inside an active scope.
    with use_sink(outer):
        with use_sink(None):
            assert resolve(None) is NULL_SINK


def test_use_sink_restores_after_exceptions():
    with pytest.raises(RuntimeError):
        with use_sink(AggregatingSink()):
            raise RuntimeError("boom")
    assert telemetry.default_sink() is NULL_SINK


def test_resolve_prefers_an_explicit_component_sink():
    component_sink = AggregatingSink()
    with use_sink(AggregatingSink()):
        assert resolve(component_sink) is component_sink


def test_set_default_sink_returns_previous_and_none_means_off():
    first = AggregatingSink()
    previous = set_default_sink(first)
    try:
        assert previous is NULL_SINK
        assert set_default_sink(None) is first
        assert telemetry.default_sink() is NULL_SINK
    finally:
        set_default_sink(None)


def test_tee_sink_fans_out_and_drops_null_members():
    a, b = AggregatingSink(), AggregatingSink()
    tee = TeeSink([a, NullSink(), b])
    assert tee and len(tee.sinks) == 2
    tee.emit(CacheMiss(app="excel"))
    assert a.count("cache_miss") == 1 and b.count("cache_miss") == 1
    assert not TeeSink([NullSink()])  # all-null tee is "off"


# ----------------------------------------------------------------------
# AggregatingSink
# ----------------------------------------------------------------------
def test_aggregating_sink_counts_and_times():
    sink = AggregatingSink()
    sink.emit(TrialStarted(task_id="t", setting_key="s", trial=0))
    sink.emit(TrialFinished(task_id="t", setting_key="s", trial=0,
                            success=True, seconds=0.25, wall_s=100.0,
                            phases={"rip": 0.2, "act": 60.0}))
    sink.emit(WorkerIdle(worker_id="w", slept_s=0.5, streak=3))
    assert sink.count("trial_started") == 1
    assert sink.count("trial_finished") == 1
    assert sink.count("worker_idle") == 1
    assert sink.count("never_seen") == 0
    assert sink.timer("trial_wall_s").total == 100.0
    assert sink.timer("phase_rip").total == pytest.approx(0.2)
    assert sink.timer("idle_sleep_s").max == 0.5
    snapshot = sink.snapshot()
    assert snapshot["counters"]["trial_finished"] == 1
    assert snapshot["timers"]["trial_seconds"]["count"] == 1
    assert snapshot["timers"]["trial_seconds"]["mean_s"] == pytest.approx(0.25)


def test_aggregating_sink_is_thread_safe():
    sink = AggregatingSink()
    per_thread, thread_count = 500, 8

    def hammer():
        for _ in range(per_thread):
            sink.emit(WorkerIdle(worker_id="w", slept_s=0.001, streak=0))

    threads = [threading.Thread(target=hammer) for _ in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sink.count("worker_idle") == per_thread * thread_count
    assert sink.timer("idle_sleep_s").count == per_thread * thread_count


def test_timer_stats_decade_buckets():
    stats = TimerStats()
    for value in (0.0005, 0.005, 0.05, 0.05, 5.0):
        stats.observe(value)
    assert stats.count == 5
    assert stats.min == 0.0005 and stats.max == 5.0
    assert stats.buckets[TimerStats.bucket_for(0.05)] == 2
    assert TimerStats.bucket_for(0.0) == "zero"
    assert TimerStats.bucket_for(-1.0) == "zero"


# ----------------------------------------------------------------------
# JsonlSink + crash-tolerant reads
# ----------------------------------------------------------------------
def test_jsonl_sink_round_trips_events(tmp_path):
    path = tmp_path / "events.jsonl"
    with JsonlSink(path) as sink:
        assert sink  # truthy: events are constructed and written
        sink.emit(TrialStarted(task_id="t1", setting_key="s", trial=0))
        sink.emit(CacheHit(app="word"))
    events = read_jsonl_events(path)
    assert [event["event"] for event in events] == ["trial_started",
                                                    "cache_hit"]
    assert events[0]["task_id"] == "t1"
    assert events[1]["app"] == "word"
    # Appending across a reopen extends, never truncates.
    with JsonlSink(path) as sink:
        sink.emit(CacheMiss(app="excel"))
    assert len(read_jsonl_events(path)) == 3


def test_jsonl_reader_tolerates_a_torn_last_line(tmp_path):
    """Satellite acceptance: a crash mid-write loses at most the partial
    trailing line; everything before it is still readable."""
    path = tmp_path / "events.jsonl"
    with JsonlSink(path) as sink:
        sink.emit(CacheHit(app="word"))
        sink.emit(CacheMiss(app="excel"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"event":"trial_fin')  # the crash: no newline, torn
    events = read_jsonl_events(path)
    assert [event["event"] for event in events] == ["cache_hit", "cache_miss"]


def test_jsonl_reader_rejects_corruption_before_the_last_line(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"event":"ok"}\nnot json\n{"event":"ok"}\n',
                    encoding="utf-8")
    with pytest.raises(TelemetryError, match=r"line 2"):
        read_jsonl_events(path)
    path.write_text('[1, 2]\n', encoding="utf-8")
    with pytest.raises(TelemetryError, match="not a JSON object"):
        read_jsonl_events(path)
    with pytest.raises(TelemetryError, match="cannot read"):
        read_jsonl_events(tmp_path / "missing.jsonl")


# ----------------------------------------------------------------------
# the trial phase breakdown
# ----------------------------------------------------------------------
def _result_with_calls() -> SessionResult:
    result = SessionResult(task_id="t", app="word",
                           interface=InterfaceSetting.GUI_PLUS_DMI,
                           model="gpt-5", reasoning="medium")
    result.record_call(LLMCallRecord(role="host", purpose="decompose",
                                     latency_s=2.0))
    result.record_call(LLMCallRecord(role="app", purpose="execute",
                                     latency_s=5.0))
    result.record_call(LLMCallRecord(role="app", purpose="verify",
                                     latency_s=1.0))
    result.record_actions(10, seconds_per_action=0.4)  # +4.0s simulated
    return result


def test_phases_from_result_splits_plan_from_act():
    result = _result_with_calls()
    phases = phases_from_result(result, rip_s=0.5, build_s=0.25)
    assert phases["rip"] == 0.5 and phases["build"] == 0.25
    assert phases["plan"] == pytest.approx(3.0)   # decompose + verify
    assert phases["act"] == pytest.approx(9.0)    # execute + actions
    assert phases["plan"] + phases["act"] == pytest.approx(result.wall_time_s)


def test_phases_from_result_omits_unmeasured_rip_and_build():
    """A caller that didn't measure rip/build (a parent observing worker
    completions) must not inject sentinel 0.0 observations into the phase
    timers."""
    phases = phases_from_result(_result_with_calls())
    assert "rip" not in phases and "build" not in phases
    assert set(phases) == {"plan", "act"}


def test_trial_finished_serializes_phases_for_jsonl(tmp_path):
    event = TrialFinished(task_id="t", setting_key="s", trial=1,
                          success=False, seconds=0.1, wall_s=12.0,
                          phases={"rip": 0.1, "plan": 2.0})
    payload = event.as_dict()
    assert payload["event"] == "trial_finished"
    assert payload["phases"] == {"rip": 0.1, "plan": 2.0}
    json.dumps(payload)  # JSONL-serializable as-is


# ----------------------------------------------------------------------
# ArtifactCache instrumentation + the max_entries LRU bound
# ----------------------------------------------------------------------
def test_cache_emits_hits_and_misses(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    with use_sink(AggregatingSink()) as sink:
        cache.load_or_build("powerpoint")
        cache.load_or_build("powerpoint")
    assert sink.count("cache_miss") == 1
    assert sink.count("cache_hit") == 1
    assert cache.hits == 1 and cache.misses == 1
    stats = cache.stats()
    assert stats["evictions"] == 0 and stats["max_entries"] is None


def test_cache_max_entries_evicts_least_recently_loaded(tmp_path):
    """Satellite acceptance: --cache-max-entries keeps the N most recently
    *loaded* entries; insertion evicts the stalest, and a hit refreshes
    recency.  Recency is the sidecar index's ns-resolution last-load stamp,
    so sequential loads are strictly ordered even on filesystems with
    coarse mtimes — no utime pinning needed."""
    cache = ArtifactCache(tmp_path / "cache", max_entries=2)
    cache.load_or_build("word")        # stalest entry after the next load
    cache.load_or_build("powerpoint")
    with use_sink(AggregatingSink()) as sink:
        cache.load_or_build("excel")  # third entry: one eviction due
    assert not cache.path_for("word").exists()
    assert cache.path_for("powerpoint").exists()
    assert cache.path_for("excel").exists()
    assert cache.evictions == 1
    assert sink.count("cache_evicted") == 1
    assert sink.count("cache_miss") == 1

    # A hit refreshes recency (LRU is by last *load*, not last build):
    # after loading powerpoint, the stalest entry is excel.
    cache.load_or_build("powerpoint")  # hit -> touch -> newest
    cache.load_or_build("word")        # rebuild word: evicts excel
    assert cache.path_for("powerpoint").exists()
    assert not cache.path_for("excel").exists()
    assert cache.evictions == 2
    # The evicted entry is rebuilt transparently on next use.
    assert cache.load_or_build("excel") is not None
    assert cache.misses == 5  # word, ppt, excel, word again, excel again
    assert cache.hits == 1


def test_cache_max_entries_validation(tmp_path):
    with pytest.raises(ValueError, match="max_entries"):
        ArtifactCache(tmp_path, max_entries=0)
    with pytest.raises(ValueError, match="max_entries"):
        ArtifactCache(tmp_path, max_entries=-2)


# ----------------------------------------------------------------------
# the live fleet-metrics snapshot sink
# ----------------------------------------------------------------------
def test_metrics_snapshot_tracks_gauges_and_drain(tmp_path):
    sink = MetricsSnapshotSink()
    sink.emit(PlanSubmitted(plan="nightly", shards=3, priority=1))
    snap = sink.snapshot()
    assert snap["plans"]["nightly"] == {"queued": 3, "leased": 0,
                                        "done": 0, "drained": False}
    # queue_depth is authoritative: it overwrites the seeded gauge.
    sink.emit(QueueDepth(plan="nightly", queued=1, leased=1, done=1))
    sink.emit(QueueDepth(plan="nightly", queued=0, leased=0, done=3))
    sink.emit(PlanDrained(plan="nightly", shards=3))
    sink.emit(WorkerIdle(worker_id="w", slept_s=0.25, streak=1))
    sink.emit(WorkerIdle(worker_id="w", slept_s=0.75, streak=2))
    snap = sink.snapshot()
    assert snap["plans"]["nightly"] == {"queued": 0, "leased": 0,
                                        "done": 3, "drained": True}
    assert snap["worker_idle"]["count"] == 2
    assert snap["worker_idle"]["slept_s"] == pytest.approx(1.0)
    assert snap["events"] == 6
    # Resubmitting a plan name clears its drained marker (a new tenant).
    sink.emit(PlanSubmitted(plan="nightly", shards=2, priority=0))
    assert sink.snapshot()["plans"]["nightly"]["drained"] is False


def test_metrics_snapshot_writes_atomically_at_interval(tmp_path):
    clock_now = [0.0]
    path = tmp_path / "fleet.json"
    with MetricsSnapshotSink(path, interval_s=10.0,
                             clock=lambda: clock_now[0]) as sink:
        sink.emit(PlanSubmitted(plan="a", shards=1, priority=0))
        first = json.loads(path.read_text())  # first event writes eagerly
        assert first["plans"]["a"]["queued"] == 1
        sink.emit(QueueDepth(plan="a", queued=0, leased=1, done=0))
        # Within the interval: the file still holds the first snapshot.
        assert json.loads(path.read_text()) == first
        clock_now[0] = 11.0
        sink.emit(QueueDepth(plan="a", queued=0, leased=0, done=1))
        assert json.loads(path.read_text())["plans"]["a"]["done"] == 1
        clock_now[0] = 12.0
        sink.emit(PlanDrained(plan="a", shards=1))
    # close() flushed the drain marker even though the interval hadn't
    # elapsed, and left no temp files behind.
    final = json.loads(path.read_text())
    assert final["plans"]["a"]["drained"] is True
    assert [p.name for p in tmp_path.iterdir()] == ["fleet.json"]
    with pytest.raises(TelemetryError, match="interval_s"):
        MetricsSnapshotSink(path, interval_s=float("nan"))


def test_tee_sink_concurrent_emit_keeps_counters_exact(tmp_path):
    """Satellite acceptance: ≥8 threads hammering one TeeSink lose no
    events — both fan-out members and the snapshot file agree on the
    exact total."""
    aggregating = AggregatingSink()
    metrics = MetricsSnapshotSink(tmp_path / "fleet.json", interval_s=0.0)
    tee = TeeSink([aggregating, metrics])
    per_thread, thread_count = 250, 8

    def hammer(worker: int) -> None:
        for index in range(per_thread):
            tee.emit(WorkerIdle(worker_id=f"w{worker}", slept_s=0.001,
                                streak=index))

    threads = [threading.Thread(target=hammer, args=(worker,))
               for worker in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    metrics.close()
    total = per_thread * thread_count
    assert aggregating.count("worker_idle") == total
    assert aggregating.timer("idle_sleep_s").count == total
    snap = json.loads((tmp_path / "fleet.json").read_text())
    assert snap["events"] == total
    assert snap["counters"]["worker_idle"] == total
    assert snap["worker_idle"]["count"] == total


def test_metrics_snapshot_carries_schema_version_and_written_at(tmp_path):
    """Satellite acceptance: every snapshot states its schema version, a
    wall-clock write stamp, and the emitting worker's identity."""
    wall = [1000.0]
    path = tmp_path / "fleet.json"
    with MetricsSnapshotSink(path, interval_s=0.0, worker_id="w7",
                             wall_clock=lambda: wall[0]) as sink:
        sink.emit(PlanSubmitted(plan="a", shards=1, priority=0))
        first = json.loads(path.read_text())
        assert first["schema_version"] == telemetry.METRICS_SCHEMA_VERSION
        assert first["written_at"] == 1000.0
        assert first["worker_id"] == "w7"
        assert first["counters"] == {"plan_submitted": 1}
        wall[0] = 1042.0
        sink.emit(QueueDepth(plan="a", queued=0, leased=0, done=1))
    final = json.loads(path.read_text())
    assert final["written_at"] == 1042.0
    # The loader accepts both known versions...
    loaded = telemetry.load_metrics_snapshot(path)
    assert loaded["schema_version"] == telemetry.METRICS_SCHEMA_VERSION
    versionless = dict(final)
    del versionless["schema_version"]
    legacy = tmp_path / "v1.json"
    legacy.write_text(json.dumps(versionless), encoding="utf-8")
    assert telemetry.load_metrics_snapshot(legacy)["plans"]["a"]["done"] == 1


def test_metrics_snapshot_reader_rejects_unknown_versions(tmp_path):
    """Satellite acceptance: an unknown schema_version fails loudly with
    an error naming the offending file, never silently rendering gauges
    whose meaning changed."""
    path = tmp_path / "future.json"
    path.write_text(json.dumps({"schema_version": 99, "plans": {}}),
                    encoding="utf-8")
    with pytest.raises(TelemetryError, match=r"future\.json.*schema_version 99"):
        telemetry.load_metrics_snapshot(path)
    with pytest.raises(TelemetryError, match="cannot read"):
        telemetry.load_metrics_snapshot(tmp_path / "missing.json")
    bad = tmp_path / "torn.json"
    bad.write_text("{torn", encoding="utf-8")
    with pytest.raises(TelemetryError, match=r"torn\.json is not valid JSON"):
        telemetry.load_metrics_snapshot(bad)
