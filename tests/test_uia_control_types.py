"""Tests for the UIA control-type catalogue."""

from repro.uia.control_types import (
    CLICKABLE_CONTROL_TYPES,
    CONTAINER_CONTROL_TYPES,
    ControlType,
    KEY_CONTROL_TYPES,
    NON_NAVIGATING_CONTROL_TYPES,
    all_control_types,
    is_clickable_type,
    is_container_type,
)


def test_there_are_41_control_types():
    # UIA defines exactly 41 control types (paper Insight #3).
    assert len(all_control_types()) == 41


def test_control_type_values_are_unique():
    values = [t.value for t in ControlType]
    assert len(values) == len(set(values))


def test_control_type_round_trip_from_string():
    for control_type in ControlType:
        assert ControlType(control_type.value) is control_type


def test_key_types_are_valid_control_types():
    assert KEY_CONTROL_TYPES <= set(ControlType)


def test_button_is_clickable_but_not_container():
    assert is_clickable_type(ControlType.BUTTON)
    assert not is_container_type(ControlType.BUTTON)


def test_window_is_container():
    assert is_container_type(ControlType.WINDOW)


def test_text_is_non_navigating():
    assert ControlType.TEXT in NON_NAVIGATING_CONTROL_TYPES
    assert not is_clickable_type(ControlType.TEXT)


def test_clickable_and_container_sets_do_not_cover_everything():
    # CUSTOM and DOCUMENT (among others) are in neither helper set.
    neither = set(ControlType) - CLICKABLE_CONTROL_TYPES - CONTAINER_CONTROL_TYPES
    assert ControlType.CUSTOM in neither


def test_string_representation_matches_value():
    assert str(ControlType.TAB_ITEM) == "TabItem"
