"""Tests for state and observation declarations (paper §3.5, Table 2)."""

from repro.dmi.state import INTERFACE_PATTERN_TABLE
from repro.uia.patterns import ToggleState


# ----------------------------------------------------------------------
# the Table 2 inventory
# ----------------------------------------------------------------------
def test_interface_pattern_table_matches_paper_rows():
    assert INTERFACE_PATTERN_TABLE["set_scrollbar_pos"] == "ScrollPattern"
    assert INTERFACE_PATTERN_TABLE["select_lines"] == "TextPattern"
    assert INTERFACE_PATTERN_TABLE["select_paragraphs"] == "TextPattern"
    assert INTERFACE_PATTERN_TABLE["select_controls"] == "SelectionPattern"
    assert "TextPattern" in INTERFACE_PATTERN_TABLE["get_texts"]
    assert INTERFACE_PATTERN_TABLE["set_toggle_state"] == "TogglePattern"
    assert INTERFACE_PATTERN_TABLE["set_expanded"] == "ExpandCollapsePattern"


# ----------------------------------------------------------------------
# set_scrollbar_pos
# ----------------------------------------------------------------------
def test_set_scrollbar_pos_sets_state_directly(mini_dmi):
    feedback = mini_dmi.set_scrollbar_pos("Mini Scroll", None, 80.0)
    assert feedback.ok
    assert feedback.detail["vertical"] == 80.0
    assert mini_dmi.app.scroll_position == 80.0


def test_set_scrollbar_pos_on_powerpoint_scrolls_deck(ppt_dmi):
    feedback = ppt_dmi.set_scrollbar_pos("Vertical Scroll Bar", None, 80.0)
    assert feedback.ok
    assert ppt_dmi.app.presentation.scroll_percent == 80.0


def test_set_scrollbar_pos_rejects_static_topology_ids(mini_dmi):
    feedback = mini_dmi.set_scrollbar_pos("42", None, 50.0)
    assert not feedback.ok
    assert "labels" in feedback.message or "label" in feedback.message


def test_set_scrollbar_pos_unknown_label_and_unsupported_pattern(mini_dmi):
    assert not mini_dmi.set_scrollbar_pos("No Such Control", None, 10.0).ok
    feedback = mini_dmi.set_scrollbar_pos("Bold", None, 10.0)
    assert not feedback.ok
    assert feedback.detail.get("required_pattern") == "Scroll"


# ----------------------------------------------------------------------
# select_lines / select_paragraphs
# ----------------------------------------------------------------------
def test_select_paragraphs_on_word_document(word_dmi):
    feedback = word_dmi.select_paragraphs("Document", 2, 2)
    assert feedback.ok
    assert word_dmi.app.document.selection == (2, 2)


def test_select_lines_out_of_range_reports_available_count(word_dmi):
    feedback = word_dmi.select_lines("Document", 0, 999)
    assert not feedback.ok
    assert feedback.detail["available"] == word_dmi.app.document.paragraph_count()


def test_select_lines_on_control_without_text_pattern(mini_dmi):
    feedback = mini_dmi.select_lines("Bold", 0, 0)
    assert not feedback.ok


# ----------------------------------------------------------------------
# select_controls
# ----------------------------------------------------------------------
def test_select_controls_single_and_multiple(mini_dmi):
    feedback = mini_dmi.select_controls(["Item A", "Item C"], mode="add")
    assert feedback.ok
    listbox = mini_dmi.app.window.find(automation_id="Mini.Items")
    selected = {item.name for item in listbox.selected_items()}
    assert selected == {"Item A", "Item C"}


def test_select_controls_is_conservative_on_unknown_labels(mini_dmi):
    feedback = mini_dmi.select_controls(["Item A", "Item Z"])
    assert not feedback.ok
    listbox = mini_dmi.app.window.find(automation_id="Mini.Items")
    assert listbox.selected_items() == []      # nothing partially selected


def test_select_controls_requires_selection_item_pattern(mini_dmi):
    feedback = mini_dmi.select_controls(["Bold"])
    assert not feedback.ok
    assert feedback.detail.get("required_pattern") == "SelectionItem"


def test_select_controls_on_excel_cell_updates_sheet_selection(excel_dmi):
    feedback = excel_dmi.select_controls(["B7"])
    assert feedback.ok
    assert excel_dmi.app.sheet.selection == [(6, 1)]


# ----------------------------------------------------------------------
# toggle / expansion / value
# ----------------------------------------------------------------------
def test_set_toggle_state_on_checkbox(word_dmi):
    # Interaction interfaces address controls on the *current* screen, so the
    # View tab (which hosts the Ruler checkbox) must be active first.
    word_dmi.app.ribbon.select_tab("View")
    word_dmi.app.desktop.relayout()
    feedback = word_dmi.set_toggle_state("Ruler", True)
    assert feedback.ok
    ruler = word_dmi.app.window.find(automation_id="Word.View.Ruler")
    assert ruler.checked
    assert feedback.detail["state"] == int(ToggleState.ON)


def test_set_expanded_and_collapsed(mini_dmi):
    dropdown = mini_dmi.app.window.find(automation_id="Mini.FontColor")
    feedback = mini_dmi.set_expanded("Font Color")
    assert feedback.ok
    assert all(child.is_on_screen() for child in dropdown.children)
    feedback = mini_dmi.set_collapsed("Font Color")
    assert feedback.ok
    assert all(not child.is_on_screen() for child in dropdown.children)


def test_set_value_on_edit_and_unsupported_control(mini_dmi):
    feedback = mini_dmi.set_value("Name Field", "draft.docx")
    assert feedback.ok
    field = mini_dmi.app.window.find(automation_id="Mini.NameField")
    assert field.value == "draft.docx"
    assert not mini_dmi.set_value("Bold", "x").ok


# ----------------------------------------------------------------------
# get_texts (observation declaration)
# ----------------------------------------------------------------------
def test_passive_digest_collects_data_items_and_coalesces_empties(excel_dmi):
    digest = excel_dmi.passive_digest()
    assert digest.entries.get("A1") == "Region"
    assert digest.coalesced_empty > 0
    text = digest.to_prompt_text()
    assert "passive get_texts" in text
    assert digest.token_estimate() > 0


def test_active_get_texts_named_control(excel_dmi):
    feedback = excel_dmi.get_texts("B2")
    assert feedback.ok
    assert feedback.detail["text"] == "Laptop"


def test_active_get_texts_full_table(excel_dmi):
    feedback = excel_dmi.get_texts()
    assert feedback.ok
    values = feedback.detail["values"]
    assert values["E2"].startswith("114000")


def test_get_texts_unknown_label(excel_dmi):
    assert not excel_dmi.get_texts("ZZ99-not-there").ok


def test_get_texts_on_text_control_reads_document(word_dmi):
    feedback = word_dmi.get_texts("Document")
    assert feedback.ok
    assert "Quarterly Report" in feedback.detail["text"]
